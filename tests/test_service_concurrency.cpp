// Concurrency tests for the re-entrant engine core and the service layer.
//
//  1. CrossEngineShadow — regression for the thread-local iteration-tag
//     leak: before iteration tags were scoped to (validator, window), a
//     kernel body of engine B touching an array instrumented by engine A
//     (both sharing host threads) stamped A's element tags with B's
//     iteration ids and manufactured DuplicateWrite/FusedConflict
//     findings no single-engine run could produce. This test interleaves
//     two validating engines on two threads and requires both reports
//     clean; it fails on the pre-scoping code.
//  2. SharedPool — N engines multiplexed over one ThreadPool produce
//     results identical to owned-pool engines, both alternating and
//     truly concurrent (TSan exercises the multi-job pool here).
//  3. ServiceDeterminism — the same ExperimentConfig run serially (with
//     equally-warm caches) and as 4 simultaneous service jobs yields
//     bit-identical diagnostics AND modeled timings per job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_support/run_experiment.hpp"
#include "field/field.hpp"
#include "par/engine.hpp"
#include "par/graph_cache.hpp"
#include "par/site_table.hpp"
#include "par/thread_pool.hpp"
#include "service/job_server.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

using analysis::ValidationReport;
using par::SiteKind;

par::EngineConfig validating_config() {
  par::EngineConfig cfg;
  cfg.validate = true;
  cfg.host_threads = 1;
  return cfg;
}

void scrub(par::Engine& eng, std::initializer_list<field::Field*> fields) {
  eng.device_sync();
  for (field::Field* f : fields) f->exit_data();
  (void)eng.take_validation_report();
}

// ---------------------------------------------------------------------
// 1. Cross-engine iteration-tag isolation.

/// Lets engine B's thread reach into engine A's field mid-kernel (the
/// field lives on A's stack; A publishes the pointer while parked).
std::atomic<field::Field*> g_foreign_field{nullptr};

TEST(CrossEngineShadow, InterleavedEnginesDoNotCrossPolluteElementTags) {
  // Engine A (thread TA) runs a kernel writing every element of its field
  // f. Its body parks at the first element until engine B (thread TB) has
  // run a kernel that — besides its own declared field g — writes f's
  // elements under a *shifted* index map, so B's thread-local iteration
  // ids disagree with the ids A will use. A then writes all of f.
  //
  // Old code: B's body stamps f's element tags (A's slot is armed
  // WriteTrack mid-body) with B's iteration ids; A's subsequent writes
  // see foreign ids on elements of its own op and report DuplicateWrite.
  // New code: tags carry (owner validator, armed window); A's slot
  // ignores B's and both reports are clean.
  constexpr idx kN = 4;
  std::atomic<int> stage{0};
  ValidationReport rep_a, rep_b;

  std::thread ta([&] {
    par::Engine eng(validating_config());
    field::Field f(eng, "svc_x_f", kN, kN, kN);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("svc_x_writer_a", SiteKind::ParallelLoop, 0);
    std::atomic<bool> parked{false};
    eng.for_each(site, par::Range3{0, kN, 0, kN, 0, kN}, {par::out(f.id())},
                 [&](idx i, idx j, idx k) {
                   if (!parked.exchange(true)) {
                     // First element: publish f's address for B, then wait
                     // for B's interleaved kernel (bounded; on timeout the
                     // test degrades to the single-engine case and still
                     // must pass).
                     g_foreign_field.store(&f, std::memory_order_release);
                     stage.store(1, std::memory_order_release);
                     const auto deadline = std::chrono::steady_clock::now() +
                                           std::chrono::seconds(10);
                     while (stage.load(std::memory_order_acquire) < 2 &&
                            std::chrono::steady_clock::now() < deadline)
                       std::this_thread::yield();
                   }
                   f(i, j, k) = static_cast<real>(i + 10 * j + 100 * k);
                 });
    eng.device_sync();
    rep_a = eng.take_validation_report();
    scrub(eng, {&f});
    g_foreign_field.store(nullptr, std::memory_order_release);
  });

  std::thread tb([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (stage.load(std::memory_order_acquire) < 1 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    if (stage.load(std::memory_order_acquire) >= 1) {
      par::Engine eng(validating_config());
      field::Field g(eng, "svc_x_g", kN, kN, kN);
      g.enter_data();
      static const par::KernelSite& site =
          SIMAS_SITE("svc_x_writer_b", SiteKind::ParallelLoop, 0);
      field::Field* f = g_foreign_field.load(std::memory_order_acquire);
      EXPECT_NE(f, nullptr);
      eng.for_each(site, par::Range3{0, kN, 0, kN, 0, kN},
                   {par::out(g.id())}, [&](idx i, idx j, idx k) {
                     g(i, j, k) = 1.0;
                     // Foreign write into A's armed array, index-shifted so
                     // B's iteration id never matches the id A will use
                     // for the same element.
                     if (f != nullptr) (*f)((i + 1) % kN, j, k) = -1.0;
                   });
      eng.device_sync();
      rep_b = eng.take_validation_report();
      scrub(eng, {&g});
    }
    stage.store(2, std::memory_order_release);
  });

  ta.join();
  tb.join();
  EXPECT_EQ(rep_a.errors(), 0) << rep_a.to_string();
  EXPECT_EQ(rep_b.errors(), 0) << rep_b.to_string();
}

// ---------------------------------------------------------------------
// 2. Engines sharing one host ThreadPool.

real checkerboard_sum(par::Engine& eng, field::Field& f, const char* tag,
                      idx n) {
  static const par::KernelSite& fill =
      SIMAS_SITE("svc_pool_fill", SiteKind::ParallelLoop, 0);
  // Result is consumed on the host right away: not async-capable.
  static const par::KernelSite& sum = SIMAS_SITE(
      "svc_pool_sum", SiteKind::ScalarReduction, 0, false, false, false);
  (void)tag;
  f.enter_data();
  // > kInlineCells so the launch actually goes through the pool.
  eng.for_each(fill, par::Range3{0, n, 0, n, 0, n}, {par::out(f.id())},
               [&](idx i, idx j, idx k) {
                 f(i, j, k) = static_cast<real>((i * 31 + j * 7 + k) % 5) -
                              2.0;
               });
  const real s = eng.reduce_sum(sum, par::Range3{0, n, 0, n, 0, n},
                                {par::in(f.id())}, [&](idx i, idx j, idx k) {
                                  return f(i, j, k) * f(i, j, k);
                                });
  eng.device_sync();
  f.exit_data();
  return s;
}

TEST(SharedPool, AlternatingLaunchesMatchOwnedPoolResults) {
  constexpr idx kN = 24;  // 13824 cells: every launch uses the pool
  // Reference: an engine owning its threads.
  real ref;
  {
    par::EngineConfig cfg;
    cfg.host_threads = 3;
    par::Engine eng(cfg);
    field::Field f(eng, "svc_pool_ref", kN, kN, kN);
    ref = checkerboard_sum(eng, f, "ref", kN);
  }
  // Two engines alternating launches over one borrowed pool.
  par::ThreadPool pool(3);
  par::EngineConfig cfg;
  cfg.shared_pool = &pool;
  par::Engine ea(cfg), eb(cfg);
  field::Field fa(ea, "svc_pool_a", kN, kN, kN);
  field::Field fb(eb, "svc_pool_b", kN, kN, kN);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(checkerboard_sum(ea, fa, "a", kN), ref);
    EXPECT_EQ(checkerboard_sum(eb, fb, "b", kN), ref);
  }
}

TEST(SharedPool, ConcurrentEnginesOnOnePoolStayDeterministic) {
  constexpr idx kN = 24;
  constexpr int kEngines = 4, kRounds = 4;
  real ref;
  {
    par::EngineConfig cfg;
    cfg.host_threads = 2;
    par::Engine eng(cfg);
    field::Field f(eng, "svc_conc_ref", kN, kN, kN);
    ref = checkerboard_sum(eng, f, "ref", kN);
  }
  par::ThreadPool pool(4);
  std::vector<std::vector<real>> sums(kEngines);
  std::vector<std::thread> threads;
  threads.reserve(kEngines);
  for (int e = 0; e < kEngines; ++e) {
    threads.emplace_back([&, e] {
      par::EngineConfig cfg;
      cfg.shared_pool = &pool;
      par::Engine eng(cfg);
      field::Field f(eng, "svc_conc_" + std::to_string(e), kN, kN, kN);
      for (int r = 0; r < kRounds; ++r)
        sums[static_cast<std::size_t>(e)].push_back(
            checkerboard_sum(eng, f, "conc", kN));
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& per_engine : sums) {
    ASSERT_EQ(per_engine.size(), static_cast<std::size_t>(kRounds));
    for (const real s : per_engine) EXPECT_EQ(s, ref);
  }
}

// ---------------------------------------------------------------------
// 3. Service-layer determinism: serving must not change the physics.

bench_support::ExperimentConfig det_cfg() {
  bench_support::ExperimentConfig cfg;
  cfg.version = variants::CodeVersion::A;
  cfg.nranks = 2;
  cfg.grid = bench_support::bench_grid();
  cfg.warmup_steps = 1;
  cfg.measure_steps = 1;
  cfg.graph_replay = true;
  cfg.boundary.enabled = true;
  cfg.boundary.seed = 77;
  cfg.boundary.tol = 1.0e-6;
  return cfg;
}

void expect_same_run(const bench_support::ExperimentResult& a,
                     const bench_support::ExperimentResult& b, i64 job) {
  EXPECT_EQ(std::memcmp(&a.final_diag, &b.final_diag, sizeof(a.final_diag)),
            0)
      << "job " << job << ": diagnostics differ";
  EXPECT_EQ(a.wall_minutes, b.wall_minutes) << "job " << job;
  EXPECT_EQ(a.mpi_minutes, b.mpi_minutes) << "job " << job;
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].seconds_per_step, b.ranks[r].seconds_per_step)
        << "job " << job << " rank " << r;
    EXPECT_EQ(a.ranks[r].mpi_seconds_per_step,
              b.ranks[r].mpi_seconds_per_step)
        << "job " << job << " rank " << r;
  }
}

TEST(ServiceDeterminism, FourSimultaneousJobsMatchWarmSerialRun) {
  const auto cfg = det_cfg();

  // Serial reference with equally-warm caches: served jobs run after the
  // server's prewarm, so their graph scopes replay from pass one and
  // their PFSS field is injected. The apples-to-apples serial run is one
  // with a pre-populated local GraphCache and an injected field — then
  // serving concurrency is the only variable left.
  par::GraphCache gcache;
  bench_support::BoundaryFields fields;
  auto warmup = cfg;
  warmup.graph_cache = &gcache;
  warmup.boundary_out = &fields;
  (void)bench_support::run_experiment(warmup);
  auto warm = cfg;
  warm.graph_cache = &gcache;
  warm.boundary_fields = &fields;
  const auto ref = bench_support::run_experiment(warm);

  service::JobServerConfig scfg;
  scfg.workers = 4;
  scfg.queue_capacity = 8;
  scfg.host_threads_total = 4;
  scfg.autostart = false;  // stage all four, then release simultaneously
  service::JobServer server(scfg);

  service::JobDescription pre;
  pre.id = -1;
  pre.config = cfg;
  const auto pr = server.prewarm(std::move(pre));
  ASSERT_TRUE(pr.ok) << pr.error;

  for (i64 id = 0; id < 4; ++id) {
    service::JobDescription d;
    d.id = id;
    d.config = cfg;
    ASSERT_TRUE(server.submit(std::move(d)));
  }
  server.start();
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << "job " << r.id << ": " << r.error;
    EXPECT_TRUE(r.field_cache_hit) << "job " << r.id;
    expect_same_run(ref, r.result, r.id);
  }
}

TEST(ServiceDeterminism, ColdServedJobMatchesPlainSerialRun) {
  // Without warm caches the comparison is direct: a job served by a
  // single-worker server with both caches off reproduces the plain
  // serial run bit for bit.
  auto cfg = det_cfg();
  cfg.boundary.seed = 78;
  const auto ref = bench_support::run_experiment(cfg);

  service::JobServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 2;
  scfg.host_threads_total = 2;
  scfg.enable_field_cache = false;
  scfg.enable_graph_cache = false;
  scfg.autostart = false;
  service::JobServer server(scfg);
  service::JobDescription d;
  d.id = 0;
  d.config = cfg;
  ASSERT_TRUE(server.submit(std::move(d)));
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[0].field_cache_used);
  expect_same_run(ref, results[0].result, 0);
}

}  // namespace
}  // namespace simas
