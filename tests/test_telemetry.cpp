#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/engine.hpp"
#include "par/site_table.hpp"
#include "telemetry/engine_metrics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf_compare.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/ranges.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"

namespace simas {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Merge;
using telemetry::MetricsSnapshot;
using telemetry::Registry;

// ---------------------------------------------------------------- registry

TEST(Registry, CountersAccumulateAndReadBack) {
  Registry reg;
  Counter c = reg.counter("engine.launches");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Re-registration returns a handle onto the same metric.
  Counter again = reg.counter("engine.launches");
  again.add(8);
  EXPECT_EQ(c.value(), 50);
}

TEST(Registry, DefaultConstructedHandlesAreInertNotCrashes) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(1.0);
  h.observe(2.0);
  EXPECT_EQ(c.value(), 0);
  EXPECT_FALSE(c.valid());
}

TEST(Registry, KindMismatchOnRegisteredNameThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", std::vector<double>{1.0}), std::logic_error);
}

TEST(Registry, HandlesSurviveRegistrationGrowth) {
  // Handles are (registry, slot) pairs, not raw pointers: registering many
  // more metrics (growing the slot vectors) must not invalidate them.
  Registry reg;
  Counter first = reg.counter("first");
  first.add(7);
  for (int i = 0; i < 200; ++i)
    reg.counter("growth." + std::to_string(i)).add(1);
  first.add(1);
  EXPECT_EQ(first.value(), 8);
}

TEST(Registry, HistogramBucketsAndOverflow) {
  Registry reg;
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  Histogram h = reg.histogram("cells", bounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (bound inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  const MetricsSnapshot snap = reg.snapshot();
  const telemetry::MetricSample* s = snap.find("cells");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), 4u);
  EXPECT_EQ(s->buckets[0], 2);
  EXPECT_EQ(s->buckets[1], 1);
  EXPECT_EQ(s->buckets[2], 0);
  EXPECT_EQ(s->buckets[3], 1);
  EXPECT_EQ(s->count, 4);
  EXPECT_DOUBLE_EQ(s->value, 0.5 + 1.0 + 5.0 + 1000.0);
}

TEST(Snapshot, MergeAppliesPerMetricPolicy) {
  Registry a, b;
  a.counter("n").add(10);
  b.counter("n").add(32);
  a.gauge("peak", Merge::Max).set(3.0);
  b.gauge("peak", Merge::Max).set(7.0);
  a.gauge("low", Merge::Min).set(2.0);
  b.gauge("low", Merge::Min).set(5.0);
  a.gauge("acc", Merge::Sum).set(1.5);
  b.gauge("acc", Merge::Sum).set(2.5);
  const std::vector<double> bounds = {1.0};
  a.histogram("h", bounds).observe(0.5);
  b.histogram("h", bounds).observe(2.0);
  b.counter("only_b").add(4);

  MetricsSnapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  EXPECT_EQ(merged.counter("n"), 42);
  EXPECT_DOUBLE_EQ(merged.gauge("peak"), 7.0);
  EXPECT_DOUBLE_EQ(merged.gauge("low"), 2.0);
  EXPECT_DOUBLE_EQ(merged.gauge("acc"), 4.0);
  EXPECT_EQ(merged.counter("only_b"), 4);  // unknown metrics are appended
  const telemetry::MetricSample* h = merged.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->buckets[0], 1);
  EXPECT_EQ(h->buckets[1], 1);
  EXPECT_EQ(h->count, 2);
}

TEST(Snapshot, JsonDumpRoundTripsThroughStrictParser) {
  Registry reg;
  reg.counter("engine.launches").add(12);
  reg.gauge("time.modeled_seconds").set(0.125);
  reg.histogram("cells", std::vector<double>{10.0}).observe(3.0);
  std::ostringstream os;
  reg.snapshot().write_json(os);

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), &doc, &err)) << err;
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* launches = metrics->find("engine.launches");
  ASSERT_NE(launches, nullptr);
  EXPECT_DOUBLE_EQ(launches->as_number(), 12.0);
  const json::Value* hist = metrics->find("cells");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  EXPECT_NE(hist->find("buckets"), nullptr);
}

// ------------------------------------------------------------ json parser

TEST(Json, ParsesScalarsAndStructure) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(R"({"a": [1, 2.5, -3e2], "b": {"c": true},
                              "d": null, "e": "s"})",
                          &v, &err))
      << err;
  EXPECT_DOUBLE_EQ(v.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_string(), "s");
}

TEST(Json, DecodesEscapesAndSurrogatePairs) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(R"("tab\t quote\" é 😀")", &v, &err))
      << err;
  EXPECT_EQ(v.as_string(), "tab\t quote\" \xC3\xA9 \xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                    // empty
      "{\"a\": 1,}",         // trailing comma
      "[1, 2] garbage",      // trailing garbage
      "{'a': 1}",            // wrong quotes
      "{\"a\": 01}",         // leading zero
      "{\"a\": NaN}",        // non-finite
      "\"unterminated",      //
      "\"bad \\x escape\"",  //
      "\"ctrl \x01 char\"",  // raw control character
      "{\"a\" 1}",           // missing colon
      "\"lone \\ud83d surrogate\"",
  };
  for (const char* text : bad) {
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(text, &v, &err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty());
  }
}

TEST(Json, WriterRoundTripPreservesValues) {
  json::Value obj{json::Value::Object{}};
  obj.set("int", json::Value(static_cast<long long>(123456789012345)));
  obj.set("neg", json::Value(-0.25));
  obj.set("s", json::Value("a\"b\nc"));
  json::Value arr{json::Value::Array{}};
  arr.push_back(json::Value(true));
  arr.push_back(json::Value(nullptr));
  obj.set("arr", std::move(arr));

  for (int indent : {0, 2}) {
    json::Value back;
    std::string err;
    ASSERT_TRUE(json::parse(json::to_string(obj, indent), &back, &err)) << err;
    EXPECT_DOUBLE_EQ(back.find("int")->as_number(), 123456789012345.0);
    EXPECT_DOUBLE_EQ(back.find("neg")->as_number(), -0.25);
    EXPECT_EQ(back.find("s")->as_string(), "a\"b\nc");
    EXPECT_TRUE(back.find("arr")->as_array()[0].as_bool());
  }
}

// -------------------------------------------------------- perfetto export

TEST(Perfetto, GoldenSingleRecorderDocument) {
  trace::Recorder rec;
  rec.enable(true);
  rec.record(0.001, 0.002, trace::Lane::Kernel, "advect");
  std::ostringstream os;
  telemetry::write_perfetto_json(os, rec, /*pid=*/0, "rank 0");
  EXPECT_EQ(os.str(),
            "{\n"
            " \"traceEvents\": [\n"
            "  {\n"
            "   \"ph\": \"M\",\n"
            "   \"pid\": 0,\n"
            "   \"name\": \"process_name\",\n"
            "   \"args\": {\n"
            "    \"name\": \"rank 0\"\n"
            "   }\n"
            "  },\n"
            "  {\n"
            "   \"ph\": \"M\",\n"
            "   \"pid\": 0,\n"
            "   \"name\": \"process_sort_index\",\n"
            "   \"args\": {\n"
            "    \"sort_index\": 0\n"
            "   }\n"
            "  },\n"
            "  {\n"
            "   \"ph\": \"M\",\n"
            "   \"pid\": 0,\n"
            "   \"tid\": 0,\n"
            "   \"name\": \"thread_name\",\n"
            "   \"args\": {\n"
            "    \"name\": \"kernels\"\n"
            "   }\n"
            "  },\n"
            "  {\n"
            "   \"ph\": \"M\",\n"
            "   \"pid\": 0,\n"
            "   \"tid\": 0,\n"
            "   \"name\": \"thread_sort_index\",\n"
            "   \"args\": {\n"
            "    \"sort_index\": 0\n"
            "   }\n"
            "  },\n"
            "  {\n"
            "   \"ph\": \"X\",\n"
            "   \"pid\": 0,\n"
            "   \"tid\": 0,\n"
            "   \"ts\": 1000,\n"
            "   \"dur\": 1000,\n"
            "   \"name\": \"advect\",\n"
            "   \"cat\": \"kernels\"\n"
            "  }\n"
            " ],\n"
            " \"displayTimeUnit\": \"ms\"\n"
            "}\n");
}

TEST(Perfetto, RankToPidMappingAndRoundTrip) {
  trace::Recorder r0, r1;
  r0.enable(true);
  r1.enable(true);
  r0.record(0.0, 1.0, trace::Lane::Kernel, "k0");
  r1.record(0.0, 1.0, trace::Lane::Transfer, "t1");
  r1.push_range(0.0, "step");
  r1.push_range(0.25, "pcg");
  r1.pop_range(0.5);
  r1.pop_range(1.0);
  const telemetry::TraceSource sources[] = {
      {0, "rank 0", &r0},
      {1, "rank 1", &r1},
  };
  std::ostringstream os;
  telemetry::write_perfetto_json(os, sources);

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), &doc, &err)) << err;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  int k0_pid = -1, t1_pid = -1, range_events = 0;
  double nested_ts = -1.0;
  for (const json::Value& ev : events->as_array()) {
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const std::string& name = ev.find("name")->as_string();
    if (name == "k0") k0_pid = static_cast<int>(ev.find("pid")->as_number());
    if (name == "t1") t1_pid = static_cast<int>(ev.find("pid")->as_number());
    if (ev.find("cat")->as_string() == "ranges") {
      ++range_events;
      if (name == "step/pcg") {
        nested_ts = ev.find("ts")->as_number();
        EXPECT_DOUBLE_EQ(ev.find("args")->find("depth")->as_number(), 1.0);
      }
    }
  }
  EXPECT_EQ(k0_pid, 0);
  EXPECT_EQ(t1_pid, 1);
  EXPECT_EQ(range_events, 2);
  EXPECT_DOUBLE_EQ(nested_ts, 0.25 * 1e6);  // modeled seconds -> µs
}

TEST(Perfetto, EmitsThreadMetadataOnlyForUsedLanes) {
  trace::Recorder rec;
  rec.enable(true);
  rec.record(0.0, 1.0, trace::Lane::MpiWait, "wait");
  std::ostringstream os;
  telemetry::write_perfetto_json(os, rec);
  const std::string out = os.str();
  EXPECT_NE(out.find("mpi-wait"), std::string::npos);
  EXPECT_EQ(out.find("um-migration"), std::string::npos);
}

// ------------------------------------------------------- ranges + profiler

TEST(Ranges, ScopesNestThroughEngineModeledTime) {
  par::EngineConfig cfg;
  cfg.gpu = true;
  cfg.host_threads = 1;
  par::Engine eng(cfg);
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const par::KernelSite& site =
      SIMAS_SITE("test_range_kernel", par::SiteKind::ParallelLoop, 0);
  eng.tracer().enable(true);
  {
    telemetry::RangeScope outer(eng, "outer");
    eng.for_each(site, par::Range3{0, 8, 0, 8, 0, 8}, {par::out(id)},
                 [](idx, idx, idx) {});
    {
      SIMAS_RANGE(eng, "inner");
      eng.for_each(site, par::Range3{0, 8, 0, 8, 0, 8}, {par::out(id)},
                   [](idx, idx, idx) {});
    }
  }
  std::vector<const trace::Event*> ranges;
  for (const trace::Event& e : eng.tracer().events())
    if (e.lane == trace::Lane::Range) ranges.push_back(&e);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0]->name, "outer/inner");
  EXPECT_EQ(ranges[0]->depth, 1);
  EXPECT_EQ(ranges[1]->name, "outer");
  EXPECT_EQ(ranges[1]->depth, 0);
  // The outer range brackets both kernels in modeled time.
  EXPECT_LE(ranges[1]->t0, ranges[0]->t0);
  EXPECT_GE(ranges[1]->t1, ranges[0]->t1);
  EXPECT_DOUBLE_EQ(ranges[1]->t1, eng.ledger().now());
}

TEST(Profiler, AggregatesPerSiteAndRanks) {
  const par::KernelSite& sa =
      SIMAS_SITE("test_prof_a", par::SiteKind::ParallelLoop, 0);
  const par::KernelSite& sb =
      SIMAS_SITE("test_prof_b", par::SiteKind::ScalarReduction, 0);
  telemetry::SiteProfiler prof;
  prof.record(sa, 0.5, 100, 800, /*fused=*/false);
  prof.record(sa, 0.25, 100, 800, /*fused=*/true);
  prof.record(sb, 2.0, 50, 400, /*fused=*/false);

  telemetry::SiteProfileSnapshot snap = prof.snapshot();
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.total_seconds(), 2.75);

  const auto top = snap.top_by_seconds(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].name, "test_prof_b");
  EXPECT_EQ(top[0].kind, "scalar_reduction");

  // Merging another rank's identical profile doubles every column.
  telemetry::SiteProfileSnapshot other = prof.snapshot();
  snap.merge_from(other);
  EXPECT_DOUBLE_EQ(snap.total_seconds(), 5.5);
  const auto by_launches = snap.top_by_launches(2);
  ASSERT_EQ(by_launches.size(), 2u);
  EXPECT_EQ(by_launches[0].name, "test_prof_a");  // 2 launches + 2 fused
  EXPECT_EQ(by_launches[0].launches, 2);
  EXPECT_EQ(by_launches[0].fused, 2);

  std::ostringstream os;
  snap.write_json(os);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), &doc, &err)) << err;
  ASSERT_TRUE(doc.is_array());
  EXPECT_EQ(doc.as_array()[0].find("site")->as_string(), "test_prof_b");
}

TEST(Engine, CountersViewMatchesRegistryAndProfilerSeesLaunches) {
  par::EngineConfig cfg;
  cfg.gpu = true;
  cfg.host_threads = 1;
  par::Engine eng(cfg);
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const par::KernelSite& site =
      SIMAS_SITE("test_metrics_kernel", par::SiteKind::ParallelLoop, 0);
  for (int i = 0; i < 3; ++i)
    eng.for_each(site, par::Range3{0, 8, 0, 8, 0, 8}, {par::out(id)},
                 [](idx, idx, idx) {});

  const par::EngineCounters c = eng.counters();
  EXPECT_EQ(c.loops_executed, 3);
  const telemetry::MetricsSnapshot snap = eng.metrics_snapshot();
  EXPECT_EQ(snap.counter("engine.loops"), 3);
  EXPECT_EQ(snap.counter("engine.launches"), c.kernel_launches);
  EXPECT_EQ(snap.counter("engine.bytes_touched"), c.bytes_touched);
  EXPECT_GT(snap.counter("pool.inline_kernels") + snap.counter("pool.jobs"),
            0);
  EXPECT_DOUBLE_EQ(snap.gauge("time.modeled_seconds"), eng.ledger().now());
  const telemetry::MetricSample* hist = snap.find("engine.kernel_cells");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3);

  const telemetry::SiteProfileSnapshot prof = eng.site_profiler().snapshot();
  double site_seconds = 0.0;
  for (const auto& row : prof.rows)
    if (row.name == "test_metrics_kernel") {
      EXPECT_EQ(row.launches, 3);
      EXPECT_EQ(row.cells, 3 * 8 * 8 * 8);
      site_seconds = row.seconds;
    }
  EXPECT_GT(site_seconds, 0.0);
}

// ----------------------------------------------------------- perf compare

TEST(PerfCompare, GlobMatchSemantics) {
  using telemetry::glob_match;
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("points[*].wall", "points[12].wall"));
  EXPECT_TRUE(glob_match("*host_seconds*", "ranks[0].host_seconds_per_step"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_FALSE(glob_match("counters.*", "metrics.counters"));
  EXPECT_TRUE(glob_match("*.b.*", "a.b.c"));
}

TEST(PerfCompare, FlattenProducesDottedAndIndexedPaths) {
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(
      R"({"a": 1, "nested": {"b": 2.5}, "arr": [{"c": 3}, 4],
          "skip_me": "string", "flag": true})",
      &doc, &err))
      << err;
  const auto leaves = telemetry::flatten_numeric(doc);
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0].first, "a");
  EXPECT_EQ(leaves[1].first, "nested.b");
  EXPECT_EQ(leaves[2].first, "arr[0].c");
  EXPECT_EQ(leaves[3].first, "arr[1]");
  EXPECT_DOUBLE_EQ(leaves[3].second, 4.0);
}

telemetry::Comparison compare_docs(const std::string& base,
                                   const std::string& cur,
                                   const std::string& rules_json = "") {
  json::Value b, c;
  std::string err;
  EXPECT_TRUE(json::parse(base, &b, &err)) << err;
  EXPECT_TRUE(json::parse(cur, &c, &err)) << err;
  std::vector<telemetry::ToleranceRule> rules;
  if (!rules_json.empty()) {
    json::Value spec;
    EXPECT_TRUE(json::parse(rules_json, &spec, &err)) << err;
    rules = telemetry::parse_rules(spec, &err);
    EXPECT_TRUE(err.empty()) << err;
  }
  return telemetry::compare(b, c, rules);
}

TEST(PerfCompare, ExactMatchPassesAndPerturbationFails) {
  const std::string base = R"({"wall": 10.0, "launches": 100})";
  EXPECT_TRUE(compare_docs(base, base).ok());

  const auto perturbed =
      compare_docs(base, R"({"wall": 10.5, "launches": 100})");
  EXPECT_FALSE(perturbed.ok());
  EXPECT_EQ(perturbed.failures, 1u);
}

TEST(PerfCompare, ToleranceRulesFirstMatchWins) {
  const std::string base = R"({"wall": 10.0, "host": 5.0})";
  const std::string cur = R"({"wall": 10.5, "host": 50.0})";
  // host is skipped; wall gets 10% relative tolerance.
  const std::string rules = R"({"rules": [
    {"pattern": "host*", "skip": true},
    {"pattern": "*", "rel": 0.10}
  ]})";
  const auto cmp = compare_docs(base, cur, rules);
  EXPECT_TRUE(cmp.ok());
  // Tighten the wall tolerance below the 5% drift: now it must fail.
  const auto tight = compare_docs(base, cur, R"({"rules": [
    {"pattern": "host*", "skip": true},
    {"pattern": "*", "rel": 0.01}
  ]})");
  EXPECT_FALSE(tight.ok());
}

TEST(PerfCompare, DirectionalRuleIgnoresImprovements) {
  const std::string base = R"({"wall": 10.0})";
  const std::string rules =
      R"({"rules": [{"pattern": "wall", "rel": 0.02, "direction": "increase"}]})";
  // 20% faster: fine under an increase-only rule.
  EXPECT_TRUE(compare_docs(base, R"({"wall": 8.0})", rules).ok());
  // 5% slower: regression.
  EXPECT_FALSE(compare_docs(base, R"({"wall": 10.5})", rules).ok());
}

TEST(PerfCompare, MissingMetricFailsNewMetricDoesNot) {
  const auto missing = compare_docs(R"({"a": 1, "b": 2})", R"({"a": 1})");
  EXPECT_FALSE(missing.ok());
  const auto added = compare_docs(R"({"a": 1})", R"({"a": 1, "b": 2})");
  EXPECT_TRUE(added.ok());
}

TEST(PerfCompare, ParseRulesRejectsUnknownKeys) {
  json::Value spec;
  std::string err;
  ASSERT_TRUE(json::parse(
      R"({"rules": [{"pattern": "*", "tolerance": 0.1}]})", &spec, &err));
  telemetry::parse_rules(spec, &err);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace simas
