// Golden-equivalence test for the scheduler refactor.
//
// The Engine used to be a monolith that accounted modeled time inline;
// it is now a recording front-end feeding kernel-stream IR ops to a
// Scheduler backend. This test pins the refactor bit-for-bit: a
// ReferenceAccountant below re-implements the pre-refactor arithmetic
// verbatim (same operations, same order, same doubles), and every loop
// model x memory mode must reproduce its clock, category totals,
// counters, and trace stream EXACTLY (==, not near).

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "par/engine.hpp"
#include "par/site_table.hpp"

namespace simas::par {
namespace {

using gpusim::TimeCategory;

struct Snapshot {
  double now = 0.0;
  std::array<double, 4> totals{};
  EngineCounters counters;
  std::vector<trace::Event> events;
};

bool events_equal(const std::vector<trace::Event>& a,
                  const std::vector<trace::Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t0 != b[i].t0 || a[i].t1 != b[i].t1 ||
        a[i].lane != b[i].lane || a[i].name != b[i].name)
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Reference: the seed engine's accounting, replicated verbatim against
// private cost/ledger/memory/trace state.

class ReferenceAccountant {
 public:
  explicit ReferenceAccountant(const EngineConfig& cfg)
      : cfg_(cfg), cost_(cfg.device), mem_(cfg.memory, &cost_, &ledger_) {
    if (mem_.unified()) cost_.set_unified_bw_penalty(0.82);
    if (cfg_.gpu && cfg_.loops != LoopModel::Acc)
      cost_.set_dc_bw_penalty(0.985);
    tracer_.enable(true);
  }

  gpusim::ArrayId register_array(const std::string& name, i64 bytes,
                                 gpusim::ScaleClass scale) {
    return mem_.register_array(name, bytes, scale);
  }

  void set_category(TimeCategory cat) { category_ = cat; }

  void kernel(const KernelSite& site, i64 cells,
              std::initializer_list<Access> acc) {
    counters_.loops_executed++;
    const i64 bytes = touch(acc, cells);
    const bool fused = cfg_.gpu && cfg_.loops == LoopModel::Acc &&
                       cfg_.fusion_enabled && site.fusion_group != 0 &&
                       site.fusion_group == last_fusion_group_;
    if (fused) counters_.fused_launches++;
    last_fusion_group_ = site.fusion_group;
    if (!fused) counters_.kernel_launches++;
    const bool async = cfg_.gpu && cfg_.loops == LoopModel::Acc &&
                       cfg_.async_enabled && site.async_capable;
    charge(site, bytes, scale_of(site, acc), fused, async,
           1.0 + cfg_.wrapper_init_overhead);
  }

  void reduction(const KernelSite& site, i64 cells,
                 std::initializer_list<Access> acc) {
    counters_.loops_executed++;
    counters_.reduction_loops++;
    counters_.kernel_launches++;
    last_fusion_group_ = 0;
    const i64 bytes = touch(acc, cells);
    charge(site, bytes, scale_of(site, acc), false, false, 1.0);
  }

  void array_reduction(const KernelSite& site, i64 cells,
                       std::initializer_list<Access> acc) {
    counters_.loops_executed++;
    counters_.reduction_loops++;
    counters_.kernel_launches++;
    last_fusion_group_ = 0;
    const i64 bytes = touch(acc, cells);
    const double factor =
        (cfg_.gpu && cfg_.loops != LoopModel::Dc2x) ? 1.35 : 1.0;
    charge(site, bytes, scale_of(site, acc), false, false, factor);
  }

  void device_sync() {
    last_fusion_group_ = 0;
    if (cfg_.gpu)
      ledger_.advance(cfg_.device.launch_overhead_s * 0.5,
                      TimeCategory::LaunchGap);
  }

  void break_fusion() { last_fusion_group_ = 0; }

  Snapshot snapshot() const {
    Snapshot s;
    s.now = ledger_.now();
    for (int c = 0; c < 4; ++c)
      s.totals[static_cast<std::size_t>(c)] =
          ledger_.total(static_cast<TimeCategory>(c));
    s.counters = counters_;
    s.events = tracer_.events();
    return s;
  }

 private:
  i64 touch(std::initializer_list<Access> acc, i64 cells) {
    i64 bytes = 0;
    for (const Access& a : acc) {
      const i64 touched = std::min<i64>(
          cells * static_cast<i64>(sizeof(real)), mem_.record(a.id).bytes);
      bytes += touched;
      if (cfg_.gpu)
        mem_.on_device_access(a.id, touched, TimeCategory::DataMotion);
    }
    return bytes;
  }

  gpusim::ScaleClass scale_of(const KernelSite& site,
                              std::initializer_list<Access> acc) const {
    if (site.surface_scaled) return gpusim::ScaleClass::Surface;
    for (const Access& a : acc) {
      if (mem_.record(a.id).scale == gpusim::ScaleClass::Surface)
        return gpusim::ScaleClass::Surface;
    }
    return gpusim::ScaleClass::Volume;
  }

  void charge(const KernelSite& site, i64 bytes, gpusim::ScaleClass scale,
              bool fused, bool async, double extra_traffic_factor) {
    const bool unified = mem_.unified() && cfg_.gpu;
    const double t0 = ledger_.now();
    ledger_.advance(cost_.launch_time(fused, async, unified),
                    TimeCategory::LaunchGap);
    const double traffic =
        cost_.kernel_time(bytes, scale) * extra_traffic_factor;
    ledger_.advance(traffic, category_);
    counters_.bytes_touched += bytes;
    if (tracer_.enabled())
      tracer_.record(t0, ledger_.now(), trace::Lane::Kernel, site.name);
  }

  EngineConfig cfg_;
  gpusim::ClockLedger ledger_;
  gpusim::CostModel cost_;
  gpusim::MemoryManager mem_;
  trace::Recorder tracer_;
  EngineCounters counters_;
  TimeCategory category_ = TimeCategory::Compute;
  int last_fusion_group_ = 0;
};

// ---------------------------------------------------------------------
// One representative op script exercising every accounting path: fusion
// chains, chain restarts, reductions breaking fusion, atomic/flipped
// array reductions, surface scaling by site flag and by buffer, the MPI
// category scope, 1-D entry points, sync and explicit fusion breaks.

const Range3 kVol{0, 16, 0, 12, 0, 10};
const Range3 kSmall{0, 8, 0, 8, 0, 8};
const Range1 kPacked{0, 600};

struct Sites {
  const KernelSite& chain_a;
  const KernelSite& chain_b;
  const KernelSite& solo;
  const KernelSite& no_async;
  const KernelSite& surf;
  const KernelSite& red;
  const KernelSite& arr_red;
  const KernelSite& pack;
  const KernelSite& red1;

  static const Sites& get() {
    static const Sites s{
        SIMAS_SITE("golden_chain_a", SiteKind::ParallelLoop, 42),
        SIMAS_SITE("golden_chain_b", SiteKind::ParallelLoop, 42),
        SIMAS_SITE("golden_solo", SiteKind::ParallelLoop, 0),
        SIMAS_SITE("golden_no_async", SiteKind::ParallelLoop, 0, false,
                   false, /*async_capable=*/false),
        SIMAS_SITE("golden_surf", SiteKind::ParallelLoop, 0, false, false,
                   true, /*surface_scaled=*/true),
        SIMAS_SITE("golden_red", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false),
        SIMAS_SITE("golden_arr_red", SiteKind::ArrayReduction, 0, false,
                 false, /*async_capable=*/false),
        SIMAS_SITE("golden_pack", SiteKind::ParallelLoop, 0),
        SIMAS_SITE("golden_red1", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false),
    };
    return s;
  }
};

Snapshot run_engine(const EngineConfig& cfg) {
  const Sites& s = Sites::get();
  Engine eng(cfg);
  eng.tracer().enable(true);
  const auto a = eng.memory().register_array("golden_a", 1 << 16);
  const auto b = eng.memory().register_array("golden_b", 1 << 16);
  const auto buf = eng.memory().register_array("golden_buf", 1 << 13,
                                               gpusim::ScaleClass::Surface);
  const auto noop3 = [](idx, idx, idx) {};
  std::vector<real> arr_out(static_cast<std::size_t>(kSmall.ni()), 0.0);

  for (int rep = 0; rep < 2; ++rep) {  // second rep: UM data now resident
    eng.for_each(s.chain_a, kVol, {in(a), out(b)}, noop3);
    eng.for_each(s.chain_b, kVol, {in(b)}, noop3);  // fuses under ACC
    eng.for_each(s.solo, kVol, {out(a)}, noop3);
    eng.reduce_sum(s.red, kVol, {in(a)},
                   [](idx, idx, idx) { return 1.0; });
    eng.for_each(s.chain_a, kVol, {in(a)}, noop3);  // chain restart
    eng.break_fusion();
    eng.for_each(s.chain_b, kVol, {in(b)}, noop3);  // broken: no fusion
    eng.array_reduce(s.arr_red, kSmall, {in(a)}, std::span<real>(arr_out),
                     [](idx, idx, idx) { return 1.0; });
    eng.for_each(s.surf, kSmall, {in(a)}, noop3);   // surface via site
    eng.for_each(s.solo, kSmall, {in(buf)}, noop3); // surface via buffer
    {
      Engine::CategoryScope mpi(eng, TimeCategory::Mpi);
      eng.for_each1(s.pack, kPacked, {out(buf)}, [](idx) {});
    }
    eng.reduce_max(s.red, kVol, {in(b)},
                   [](idx, idx, idx) { return 2.0; });
    eng.device_sync();
    eng.reduce_sum1(s.red1, kPacked, {in(a)}, [](idx) { return 1.0; });
    eng.for_each(s.no_async, kVol, {out(b)}, noop3);
  }

  Snapshot snap;
  snap.now = eng.ledger().now();
  for (int c = 0; c < 4; ++c)
    snap.totals[static_cast<std::size_t>(c)] =
        eng.ledger().total(static_cast<TimeCategory>(c));
  snap.counters = eng.counters();
  snap.events = eng.tracer().events();
  return snap;
}

Snapshot run_reference(const EngineConfig& cfg) {
  const Sites& s = Sites::get();
  ReferenceAccountant ref(cfg);
  const auto a =
      ref.register_array("golden_a", 1 << 16, gpusim::ScaleClass::Volume);
  const auto b =
      ref.register_array("golden_b", 1 << 16, gpusim::ScaleClass::Volume);
  const auto buf =
      ref.register_array("golden_buf", 1 << 13, gpusim::ScaleClass::Surface);
  const i64 vol = kVol.count();
  const i64 small = kSmall.count();
  const i64 packed = kPacked.count();

  for (int rep = 0; rep < 2; ++rep) {
    ref.kernel(s.chain_a, vol, {in(a), out(b)});
    ref.kernel(s.chain_b, vol, {in(b)});
    ref.kernel(s.solo, vol, {out(a)});
    ref.reduction(s.red, vol, {in(a)});
    ref.kernel(s.chain_a, vol, {in(a)});
    ref.break_fusion();
    ref.kernel(s.chain_b, vol, {in(b)});
    ref.array_reduction(s.arr_red, small, {in(a)});
    ref.kernel(s.surf, small, {in(a)});
    ref.kernel(s.solo, small, {in(buf)});
    ref.set_category(TimeCategory::Mpi);
    ref.kernel(s.pack, packed, {out(buf)});
    ref.set_category(TimeCategory::Compute);
    ref.reduction(s.red, vol, {in(b)});
    ref.device_sync();
    ref.reduction(s.red1, packed, {in(a)});
    ref.kernel(s.no_async, vol, {out(b)});
  }
  return ref.snapshot();
}

void expect_identical(const EngineConfig& cfg, const char* label) {
  SCOPED_TRACE(label);
  const Snapshot eng = run_engine(cfg);
  const Snapshot ref = run_reference(cfg);

  // Exact equality: the refactor must not change a single double.
  EXPECT_EQ(eng.now, ref.now);
  EXPECT_EQ(eng.totals[0], ref.totals[0]);  // Compute
  EXPECT_EQ(eng.totals[1], ref.totals[1]);  // LaunchGap
  EXPECT_EQ(eng.totals[2], ref.totals[2]);  // DataMotion
  EXPECT_EQ(eng.totals[3], ref.totals[3]);  // Mpi
  EXPECT_GT(eng.now, 0.0);  // the script actually charged time

  EXPECT_EQ(eng.counters.kernel_launches, ref.counters.kernel_launches);
  EXPECT_EQ(eng.counters.loops_executed, ref.counters.loops_executed);
  EXPECT_EQ(eng.counters.fused_launches, ref.counters.fused_launches);
  EXPECT_EQ(eng.counters.reduction_loops, ref.counters.reduction_loops);
  EXPECT_EQ(eng.counters.bytes_touched, ref.counters.bytes_touched);

  EXPECT_TRUE(events_equal(eng.events, ref.events))
      << "trace streams differ (" << eng.events.size() << " vs "
      << ref.events.size() << " events)";
}

EngineConfig config_for(LoopModel loops, gpusim::MemoryMode mem) {
  EngineConfig cfg;
  cfg.loops = loops;
  cfg.memory = mem;
  cfg.gpu = true;
  cfg.host_threads = 1;
  return cfg;
}

TEST(SchedulerGolden, AllLoopModelsAndMemoryModesMatchSeedAccounting) {
  for (const LoopModel loops :
       {LoopModel::Acc, LoopModel::Dc2018, LoopModel::Dc2x}) {
    for (const gpusim::MemoryMode mem :
         {gpusim::MemoryMode::Manual, gpusim::MemoryMode::Unified}) {
      const EngineConfig cfg = config_for(loops, mem);
      const std::string label = std::string(loop_model_name(loops)) + "/" +
                                gpusim::memory_mode_name(mem);
      expect_identical(cfg, label.c_str());
    }
  }
}

TEST(SchedulerGolden, CpuEngineMatchesSeedAccounting) {
  EngineConfig cfg;
  cfg.loops = LoopModel::Acc;
  cfg.memory = gpusim::MemoryMode::HostOnly;
  cfg.gpu = false;
  cfg.device = gpusim::epyc7742_node();
  cfg.host_threads = 1;
  expect_identical(cfg, "cpu/host-only");
}

TEST(SchedulerGolden, AblationTogglesMatchSeedAccounting) {
  EngineConfig no_fusion = config_for(LoopModel::Acc, gpusim::MemoryMode::Manual);
  no_fusion.fusion_enabled = false;
  expect_identical(no_fusion, "acc/no-fusion");

  EngineConfig no_async = config_for(LoopModel::Acc, gpusim::MemoryMode::Manual);
  no_async.async_enabled = false;
  expect_identical(no_async, "acc/no-async");

  EngineConfig wrapped = config_for(LoopModel::Dc2x, gpusim::MemoryMode::Unified);
  wrapped.wrapper_init_overhead = 0.08;  // paper Code 6 wrapper traffic
  expect_identical(wrapped, "dc2x/wrapper-overhead");
}

TEST(SchedulerGolden, OverlapHaloFlagDoesNotChangeAccounting) {
  // EngineConfig::overlap_halo is never consulted by the Scheduler:
  // accounting per op is unchanged, only the op sequence emitted by the
  // halo layer differs. The same script under the flag must reproduce the
  // reference accounting bit-for-bit.
  for (const LoopModel loops :
       {LoopModel::Acc, LoopModel::Dc2018, LoopModel::Dc2x}) {
    for (const gpusim::MemoryMode mem :
         {gpusim::MemoryMode::Manual, gpusim::MemoryMode::Unified}) {
      EngineConfig cfg = config_for(loops, mem);
      cfg.overlap_halo = true;
      const std::string label = std::string(loop_model_name(loops)) + "/" +
                                gpusim::memory_mode_name(mem) + "/overlap";
      expect_identical(cfg, label.c_str());
    }
  }
}

TEST(SchedulerGolden, BackendNamesFollowLoopModel) {
  for (const LoopModel loops :
       {LoopModel::Acc, LoopModel::Dc2018, LoopModel::Dc2x}) {
    EngineConfig cfg = config_for(loops, gpusim::MemoryMode::Manual);
    Engine eng(cfg);
    EXPECT_STREQ(eng.scheduler().name(), loop_model_name(loops));
  }
}

}  // namespace
}  // namespace simas::par
