// Property test of the constrained-transport machinery: ANY field
// initialized as the discrete curl of a random edge vector potential is
// divergence-free to round-off, and stays so through full solver steps —
// for random potentials, stretched meshes, and every decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "mhd/ops.hpp"
#include "mhd/solver.hpp"
#include "mpisim/comm.hpp"
#include "util/rng.hpp"
#include "variants/code_version.hpp"

namespace simas::mhd {
namespace {

// Deterministic pseudo-random value per global edge location, so every
// rank computes identical potentials for shared faces.
real edge_noise(u64 seed, idx gi, idx j, idx k, int component) {
  Rng rng(seed ^ (static_cast<u64>(gi + 7) * 73856093ull) ^
          (static_cast<u64>(j + 13) * 19349663ull) ^
          (static_cast<u64>(k + 29) * 83492791ull) ^
          (static_cast<u64>(component) * 2654435761ull));
  return rng.uniform(-1.0, 1.0);
}

struct Params {
  int nranks;
  double stretch;
  u64 seed;
};

class CtRandomPotential : public ::testing::TestWithParam<Params> {};

TEST_P(CtRandomPotential, CurlOfPotentialIsDivFreeAndStaysSo) {
  const auto p = GetParam();
  SolverConfig cfg;
  cfg.grid.nr = 12;
  cfg.grid.nt = 8;
  cfg.grid.np = 12;
  cfg.grid.r_stretch = p.stretch;

  mpisim::World world(p.nranks);
  world.run([&](int rank) {
    par::Engine engine(variants::engine_config(variants::CodeVersion::A,
                                               gpusim::a100_40gb(), 1));
    mpisim::Comm comm(world, rank, engine);
    MasSolver solver(engine, comm, cfg);
    solver.initialize();
    auto& st = solver.state();
    auto& c = solver.context();
    const auto& lg = solver.local_grid();
    const idx nloc = st.nloc, nt = st.nt, np = st.np;
    const idx ilo = lg.slab().ilo;
    const real dph = lg.dph();

    // Random vector potential on edges: A_r in er, A_t in et, A_p in ep.
    for (idx i = 0; i < nloc; ++i)
      for (idx j = 0; j <= nt; ++j)
        for (idx k = 0; k < np; ++k)
          st.er(i, j, k) = edge_noise(p.seed, ilo + i, j, k, 0);
    for (idx i = 0; i <= nloc; ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k)
          st.et(i, j, k) = edge_noise(p.seed, ilo + i, j, k, 1);
    for (idx i = 0; i <= nloc; ++i)
      for (idx j = 0; j <= nt; ++j)
        for (idx k = 0; k < np; ++k)
          st.ep(i, j, k) = edge_noise(p.seed, ilo + i, j, k, 2);
    c.halo.wrap_phi({&st.er, &st.et});

    // B = circulation(A)/area on every face (the CT curl).
    for (idx i = 0; i <= nloc; ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k) {
          const real rf = lg.rf(i);
          const real ctj0 = std::cos(lg.tf(j)),
                     ctj1 = std::cos(lg.tf(j + 1));
          const real area = sq(rf) * (ctj0 - ctj1) * dph;
          const real lp0 = rf * lg.stf(j) * dph;
          const real lp1 = rf * lg.stf(j + 1) * dph;
          const real lt = rf * lg.dtc(j);
          st.br(i, j, k) =
              ((st.ep(i, j + 1, k) * lp1 - st.ep(i, j, k) * lp0) -
               (st.et(i, j, k + 1) - st.et(i, j, k)) * lt) /
              area;
        }
    for (idx i = 0; i < nloc; ++i)
      for (idx j = 0; j <= nt; ++j)
        for (idx k = 0; k < np; ++k) {
          const real stf = std::max<real>(lg.stf(j), 1e-12);
          const real alin = (sq(lg.rf(i + 1)) - sq(lg.rf(i))) / 2.0;
          const real area = alin * stf * dph;
          const real lr = lg.drc(i);
          const real lp0 = lg.rf(i) * stf * dph;
          const real lp1 = lg.rf(i + 1) * stf * dph;
          st.bt(i, j, k) =
              ((st.er(i, j, k + 1) - st.er(i, j, k)) * lr -
               (st.ep(i + 1, j, k) * lp1 - st.ep(i, j, k) * lp0)) /
              area;
        }
    for (idx i = 0; i < nloc; ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k) {
          const real alin = (sq(lg.rf(i + 1)) - sq(lg.rf(i))) / 2.0;
          const real area = alin * lg.dtc(j);
          const real lr = lg.drc(i);
          const real lt0 = lg.rf(i) * lg.dtc(j);
          const real lt1 = lg.rf(i + 1) * lg.dtc(j);
          st.bp(i, j, k) =
              ((st.et(i + 1, j, k) * lt1 - st.et(i, j, k) * lt0) -
               (st.er(i, j + 1, k) - st.er(i, j, k)) * lr) /
              area;
        }
    apply_b_ghosts(c);

    // Property 1: div(curl A) = 0 to round-off, for any A.
    real max_div = 0.0;
    for (idx i = 0; i < nloc; ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k)
          max_div = std::max(max_div,
                             std::abs(div_b_cell(lg, st, i, j, k)));
    EXPECT_LT(max_div, 1e-10);

    // Property 2: the CT update preserves it through full physics steps
    // (the random field is dynamically violent; one small step suffices).
    compute_center_b(c);
    exchange_center_ghosts(c);
    ct_update(c, 1e-5);
    real max_div2 = 0.0;
    for (idx i = 0; i < nloc; ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k)
          max_div2 = std::max(max_div2,
                              std::abs(div_b_cell(lg, st, i, j, k)));
    EXPECT_LT(max_div2, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CtRandomPotential,
    ::testing::Values(Params{1, 1.0, 11}, Params{1, 6.0, 22},
                      Params{2, 4.0, 33}, Params{4, 1.0, 44},
                      Params{4, 8.0, 55}, Params{3, 2.0, 66}));

}  // namespace
}  // namespace simas::mhd
