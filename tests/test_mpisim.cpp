#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "field/field.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/decomposition.hpp"
#include "mpisim/halo.hpp"
#include "variants/code_version.hpp"

namespace simas::mpisim {
namespace {

par::EngineConfig manual_gpu() {
  par::EngineConfig cfg;
  cfg.loops = par::LoopModel::Acc;
  cfg.memory = gpusim::MemoryMode::Manual;
  cfg.gpu = true;
  return cfg;
}

TEST(Decomposition, CoversAllCellsContiguously) {
  for (const idx nr : {7, 8, 24, 33}) {
    for (const int nranks : {1, 2, 3, 4, 7}) {
      if (static_cast<idx>(nranks) > nr) continue;
      idx covered = 0;
      idx prev_end = 0;
      for (int r = 0; r < nranks; ++r) {
        const Slab s = radial_slab(nr, nranks, r);
        EXPECT_EQ(s.ilo, prev_end);
        EXPECT_GT(s.n(), 0);
        prev_end = s.ihi;
        covered += s.n();
        EXPECT_EQ(s.rank_below, r == 0 ? -1 : r - 1);
        EXPECT_EQ(s.rank_above, r == nranks - 1 ? -1 : r + 1);
      }
      EXPECT_EQ(covered, nr);
      EXPECT_EQ(prev_end, nr);
    }
  }
}

TEST(Decomposition, BalancedWithinOneCell) {
  const Slab a = radial_slab(10, 3, 0);
  const Slab b = radial_slab(10, 3, 1);
  const Slab c = radial_slab(10, 3, 2);
  EXPECT_LE(a.n() - c.n(), 1);
  EXPECT_GE(a.n(), b.n());
}

TEST(Decomposition, RejectsBadArguments) {
  EXPECT_THROW(radial_slab(4, 0, 0), std::invalid_argument);
  EXPECT_THROW(radial_slab(4, 2, 2), std::invalid_argument);
  EXPECT_THROW(radial_slab(4, 5, 0), std::invalid_argument);
}

TEST(World, RunsAllRanksAndPropagatesExceptions) {
  World world(4);
  std::vector<int> hit(4, 0);
  world.run([&](int r) { hit[static_cast<std::size_t>(r)] = 1; });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 4);

  World world2(2);
  EXPECT_THROW(world2.run([&](int r) {
    if (r == 1) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(Comm, SendRecvDeliversPayload) {
  World world(2);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const auto buf = eng.memory().register_array(
        "buf", 64 * 8, gpusim::ScaleClass::Surface);
    eng.memory().enter_data(buf);
    if (rank == 0) {
      std::vector<real> data(64);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<real>(i) * 1.5;
      comm.send(1, 7, data, buf);
    } else {
      std::vector<real> data(64, 0.0);
      comm.recv(0, 7, data, buf);
      for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_DOUBLE_EQ(data[i], static_cast<real>(i) * 1.5);
    }
  });
}

TEST(Comm, RecvWaitsForSenderModeledClock) {
  World world(2);
  double receiver_wait = -1.0;
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const auto buf = eng.memory().register_array(
        "buf", 8 * 8, gpusim::ScaleClass::Surface);
    eng.memory().enter_data(buf);
    std::vector<real> data(8, 1.0);
    if (rank == 0) {
      // Sender is "busy" for 1 modeled second before sending.
      eng.ledger().advance(1.0, gpusim::TimeCategory::Compute);
      comm.send(1, 1, data, buf);
    } else {
      comm.recv(0, 1, data, buf);
      receiver_wait = eng.ledger().mpi_time();
      EXPECT_GE(eng.ledger().now(), 1.0);  // synced past the sender's clock
    }
  });
  EXPECT_GE(receiver_wait, 1.0);  // load-imbalance wait counted as MPI
}

TEST(Comm, SelfSendRecvWorks) {
  World world(1);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const auto buf = eng.memory().register_array(
        "buf", 16 * 8, gpusim::ScaleClass::Surface);
    eng.memory().enter_data(buf);
    std::vector<real> data(16, 3.0);
    comm.send(0, 2, data, buf);
    std::vector<real> got(16, 0.0);
    comm.recv(0, 2, got, buf);
    EXPECT_DOUBLE_EQ(got[5], 3.0);
    EXPECT_GT(eng.ledger().mpi_time(), 0.0);
  });
}

TEST(Comm, AllreduceSumAndMaxAreExactAndSynchronizing) {
  for (const int nranks : {1, 2, 3, 5, 8}) {
    World world(nranks);
    world.run([&](int rank) {
      par::Engine eng(manual_gpu());
      Comm comm(world, rank, eng);
      // Unequal work before the collective.
      eng.ledger().advance(0.1 * rank, gpusim::TimeCategory::Compute);
      const double s = comm.allreduce_sum(static_cast<double>(rank + 1));
      EXPECT_DOUBLE_EQ(s, nranks * (nranks + 1) / 2.0);
      const double m = comm.allreduce_max(static_cast<double>(rank));
      EXPECT_DOUBLE_EQ(m, nranks - 1.0);
      // Every rank's clock must be past the slowest participant's arrival.
      EXPECT_GE(eng.ledger().now(), 0.1 * (nranks - 1));
    });
  }
}

TEST(Comm, UnifiedMemoryStagesThroughHost) {
  World world(2);
  world.run([&](int rank) {
    par::EngineConfig cfg = manual_gpu();
    cfg.memory = gpusim::MemoryMode::Unified;
    cfg.loops = par::LoopModel::Dc2x;
    par::Engine eng(cfg);
    Comm comm(world, rank, eng);
    const auto buf = eng.memory().register_array(
        "buf", 1 << 16, gpusim::ScaleClass::Surface);
    // Touch on device so the send must page it back out.
    eng.memory().on_device_access(buf, 1 << 16,
                                  gpusim::TimeCategory::DataMotion);
    std::vector<real> data((1 << 16) / 8, 1.0);
    if (rank == 0) {
      comm.send(1, 3, data, buf);
      EXPECT_GT(eng.memory().um_stats().d2h_bytes, 0);  // paged out to send
    } else {
      comm.recv(0, 3, data, buf);
      EXPECT_GT(eng.ledger().mpi_time(), 0.0);
    }
  });
}

TEST(Comm, ManualDeviceBuffersGoPeerToPeer) {
  World world(2);
  std::vector<double> mpi_time(2, 0.0);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const auto buf = eng.memory().register_array(
        "buf", 1 << 16, gpusim::ScaleClass::Surface);
    eng.memory().enter_data(buf);
    EXPECT_TRUE(eng.memory().device_direct_eligible(buf));
    std::vector<real> data((1 << 16) / 8, 1.0);
    if (rank == 0) comm.send(1, 4, data, buf);
    if (rank == 1) comm.recv(0, 4, data, buf);
    mpi_time[static_cast<std::size_t>(rank)] = eng.ledger().mpi_time();
  });
  // The sender paid a P2P transfer; no UM migration costs anywhere.
  EXPECT_GT(mpi_time[0], 0.0);
}

class HaloRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HaloRoundTrip, ExchangeRMovesBoundaryPlanes) {
  const int nranks = GetParam();
  const idx nr = 12, nt = 5, np = 6;
  World world(nranks);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const Slab slab = radial_slab(nr, nranks, rank);
    HaloExchanger halo(eng, comm, slab, slab.n(), nt, np);
    field::Field f(eng, "f", slab.n(), nt, np, 1);
    // Fill with globally identifiable values.
    for (idx i = 0; i < slab.n(); ++i)
      for (idx j = 0; j < nt; ++j)
        for (idx k = 0; k < np; ++k)
          f(i, j, k) = static_cast<real>((slab.ilo + i) * 10000 + j * 100 + k);
    halo.exchange_r({&f});
    if (slab.rank_below >= 0) {
      EXPECT_DOUBLE_EQ(f(-1, 2, 3),
                       static_cast<real>((slab.ilo - 1) * 10000 + 203));
    }
    if (slab.rank_above >= 0) {
      EXPECT_DOUBLE_EQ(f(slab.n(), 1, 4),
                       static_cast<real>((slab.ihi) * 10000 + 104));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HaloRoundTrip,
                         ::testing::Values(1, 2, 3, 4));

TEST(Halo, WrapPhiIsPeriodic) {
  World world(1);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const Slab slab = radial_slab(4, 1, 0);
    HaloExchanger halo(eng, comm, slab, 4, 3, 5);
    field::Field f(eng, "f", 4, 3, 5, 1);
    for (idx i = 0; i < 4; ++i)
      for (idx j = 0; j < 3; ++j)
        for (idx k = 0; k < 5; ++k) f(i, j, k) = 100.0 * i + 10.0 * j + k;
    halo.wrap_phi({&f});
    for (idx i = 0; i < 4; ++i)
      for (idx j = 0; j < 3; ++j) {
        EXPECT_DOUBLE_EQ(f(i, j, -1), f(i, j, 4));   // ghost -1 = plane np-1
        EXPECT_DOUBLE_EQ(f(i, j, 5), f(i, j, 0));    // ghost np = plane 0
      }
  });
}

TEST(Halo, BytesSentMatchesPayloadFormula) {
  const idx nr = 12, nt = 5, np = 6;
  for (const int nranks : {1, 2, 3}) {
    World world(nranks);
    world.run([&](int rank) {
      par::Engine eng(manual_gpu());
      Comm comm(world, rank, eng);
      const Slab slab = radial_slab(nr, nranks, rank);
      HaloExchanger halo(eng, comm, slab, slab.n(), nt, np);
      field::Field a(eng, "a", slab.n(), nt, np, 1);
      field::Field b(eng, "b", slab.n(), nt, np, 1);
      EXPECT_EQ(halo.bytes_sent(), 0);

      // Radial: one message of nf x (nt+1) x np reals per neighbour,
      // counted on the sending rank.
      halo.exchange_r({&a, &b});
      const i64 neighbors =
          (slab.rank_below >= 0 ? 1 : 0) + (slab.rank_above >= 0 ? 1 : 0);
      const i64 r_payload = static_cast<i64>(nt + 1) * np * 2 *
                            static_cast<i64>(sizeof(real));
      EXPECT_EQ(halo.bytes_sent_r(), neighbors * r_payload);
      EXPECT_EQ(halo.bytes_sent_phi(), 0);

      // φ wrap: a self-exchange is one send like any other — counted
      // once, at the full two-plane payload.
      halo.wrap_phi({&a});
      const i64 phi_payload = static_cast<i64>(slab.n() + 1) * (nt + 1) * 2 *
                              static_cast<i64>(sizeof(real));
      EXPECT_EQ(halo.bytes_sent_phi(), phi_payload);
      EXPECT_EQ(halo.bytes_sent(), neighbors * r_payload + phi_payload);
    });
  }
}

TEST(Halo, OverlappedExchangeCountsSameBytes) {
  const idx nr = 12, nt = 5, np = 6;
  World world(2);
  std::vector<i64> sync_bytes(2, 0), async_bytes(2, 0);
  for (const bool overlap : {false, true}) {
    world.run([&](int rank) {
      par::EngineConfig cfg = manual_gpu();
      cfg.overlap_halo = overlap;
      par::Engine eng(cfg);
      Comm comm(world, rank, eng);
      const Slab slab = radial_slab(nr, 2, rank);
      HaloExchanger halo(eng, comm, slab, slab.n(), nt, np);
      field::Field f(eng, "f", slab.n(), nt, np, 1);
      if (overlap) {
        const int h = halo.begin_exchange_r({&f});
        halo.finish_exchange_r(h);
        async_bytes[static_cast<std::size_t>(rank)] = halo.bytes_sent();
      } else {
        halo.exchange_r({&f});
        sync_bytes[static_cast<std::size_t>(rank)] = halo.bytes_sent();
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(sync_bytes[static_cast<std::size_t>(r)], 0);
    EXPECT_EQ(sync_bytes[static_cast<std::size_t>(r)],
              async_bytes[static_cast<std::size_t>(r)]);
  }
}

TEST(Halo, BeginExchangeRequiresOverlapConfig) {
  World world(1);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());  // overlap_halo not set
    Comm comm(world, rank, eng);
    const Slab slab = radial_slab(4, 1, 0);
    HaloExchanger halo(eng, comm, slab, 4, 3, 5);
    field::Field f(eng, "f", 4, 3, 5, 1);
    EXPECT_THROW(halo.begin_exchange_r({&f}), std::logic_error);
  });
}

TEST(Halo, RejectsTooManyFields) {
  World world(1);
  world.run([&](int rank) {
    par::Engine eng(manual_gpu());
    Comm comm(world, rank, eng);
    const Slab slab = radial_slab(4, 1, 0);
    HaloExchanger halo(eng, comm, slab, 4, 3, 5, /*max_fields=*/2);
    field::Field a(eng, "a", 4, 3, 5, 1);
    field::Field b(eng, "b", 4, 3, 5, 1);
    field::Field c(eng, "c", 4, 3, 5, 1);
    EXPECT_THROW(halo.exchange_r({&a, &b, &c}), std::invalid_argument);
    EXPECT_THROW(halo.wrap_phi({&a, &b, &c}), std::invalid_argument);
  });
}

}  // namespace
}  // namespace simas::mpisim
