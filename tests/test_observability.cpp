// End-to-end observability tests (DESIGN.md §18): trace-context minting
// and propagation, span-tree completeness (the 1e-6 phase-sum invariant),
// the flight recorder under writer contention and on the seeded-bug dump
// path (file:line provenance), Prometheus exposition, histogram bucket
// audit (configurable edges + exact running max), the metrics registry
// under the snapshot-while-writing discipline the JobServer uses, the
// perf_check --summary digest, and a live mid-run scrape of the
// introspection surface. Every suite name starts with "Observability" so
// the TSan CI job can select the contention tests by regex.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/run_experiment.hpp"
#include "field/field.hpp"
#include "par/engine.hpp"
#include "par/env_config.hpp"
#include "par/sim_context.hpp"
#include "service/introspection.hpp"
#include "service/job_server.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/perf_compare.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/span_tree.hpp"
#include "telemetry/trace_context.hpp"
#include "util/json.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

using par::SiteKind;
using telemetry::FlightKind;
using telemetry::FlightNote;
using telemetry::FlightRecorder;
using telemetry::TraceContext;

// ---------------------------------------------------------------------
// Trace contexts.

TEST(ObservabilityTrace, MintedContextsAreActiveAndUnique) {
  const TraceContext a = TraceContext::mint();
  const TraceContext b = TraceContext::mint();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_FALSE(TraceContext{}.active());
}

TEST(ObservabilityTrace, ChildSpansShareTraceIdWithDistinctSpanIds) {
  const TraceContext root = TraceContext::mint();
  // The rank convention: rank r is the root's child(r + 1), so no rank
  // span ever collides with the root's span id.
  const TraceContext r0 = root.child(1);
  const TraceContext r1 = root.child(2);
  EXPECT_EQ(r0.trace_id, root.trace_id);
  EXPECT_EQ(r1.trace_id, root.trace_id);
  EXPECT_NE(r0.span_id, r1.span_id);
  EXPECT_NE(r0.span_id, root.span_id);
  EXPECT_NE(r1.span_id, root.span_id);
}

// ---------------------------------------------------------------------
// Span trees.

telemetry::JobSpanRecord consistent_record() {
  telemetry::JobSpanRecord rec;
  rec.ctx = TraceContext::mint();
  rec.job_id = 7;
  rec.name = "unit";
  rec.queue_host_seconds = 0.001;
  rec.run_host_seconds = 0.1;
  telemetry::RankSpan rank;
  rank.rank = 0;
  rank.ctx = rec.ctx.child(1);
  rank.phases.compute_seconds = 1.0;
  rank.phases.launch_gap_seconds = 0.25;
  rank.phases.data_motion_seconds = 0.5;
  rank.phases.mpi_exposed_seconds = 0.25;
  rank.phases.hidden_mpi_seconds = 0.125;  // not part of the sum
  rank.phases.modeled_seconds = 2.0;
  rec.ranks.push_back(rank);
  return rec;
}

TEST(ObservabilitySpans, CompleteAcceptsConsistentPhases) {
  std::string why;
  EXPECT_TRUE(consistent_record().complete(1e-6, &why)) << why;
}

TEST(ObservabilitySpans, CompleteRejectsEmptyMissingPhaseAndBadSum) {
  std::string why;
  telemetry::JobSpanRecord rec = consistent_record();
  rec.ranks.clear();
  EXPECT_FALSE(rec.complete(1e-6, &why));

  rec = consistent_record();
  rec.ranks[0].phases.compute_seconds = 0.0;
  EXPECT_FALSE(rec.complete(1e-6, &why));
  EXPECT_NE(why.find("compute"), std::string::npos) << why;

  rec = consistent_record();
  rec.ranks[0].phases.launch_gap_seconds += 0.01;  // sum != modeled
  EXPECT_FALSE(rec.complete(1e-6, &why));
}

TEST(ObservabilitySpans, JsonPutsModeledLeavesUnderAttribution) {
  const json::Value v = telemetry::span_record_json(consistent_record());
  const json::Value* attr = v.find("attribution");
  ASSERT_NE(attr, nullptr);
  for (const char* key :
       {"compute_seconds", "launch_gap_seconds", "prefetch_seconds",
        "mpi_exposed_seconds", "mpi_hidden_seconds", "modeled_wall_seconds"})
    EXPECT_NE(attr->find(key), nullptr) << key;
  const json::Value* ok = v.find("span_sum_ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->is_bool());  // bool: invisible to perf_check's flatten
  EXPECT_TRUE(ok->as_bool());
  // Host wall-clock leaves keep the host_seconds suffix the skip rules
  // in tools/perf_tolerances.json match.
  EXPECT_NE(attr->find("queue_host_seconds"), nullptr);
  EXPECT_NE(attr->find("run_host_seconds"), nullptr);
}

TEST(ObservabilitySpans, RunExperimentFillsCompleteRankSpans) {
  bench_support::ExperimentConfig cfg;
  cfg.version = variants::CodeVersion::A;
  cfg.nranks = 2;
  cfg.grid = bench_support::bench_grid();
  cfg.warmup_steps = 0;
  cfg.measure_steps = 1;
  cfg.trace = TraceContext::mint();
  const auto result = bench_support::run_experiment(cfg);
  ASSERT_EQ(result.rank_spans.size(), 2u);
  telemetry::JobSpanRecord rec;
  rec.ctx = cfg.trace;
  rec.job_id = 1;
  rec.ranks = result.rank_spans;
  std::string why;
  EXPECT_TRUE(rec.complete(1e-6, &why)) << why;
  for (const telemetry::RankSpan& rank : result.rank_spans) {
    EXPECT_EQ(rank.ctx.trace_id, cfg.trace.trace_id);
    EXPECT_GT(rank.phases.modeled_seconds, 0.0);
  }
  // The dotted metric families ride alongside the deprecated flat fields.
  EXPECT_GT(result.metrics.gauge("time.wall_minutes"), 0.0);
  EXPECT_EQ(result.metrics.gauge("time.wall_minutes"), result.wall_minutes);
  EXPECT_EQ(result.metrics.gauge("mpi.exposed_minutes"), result.mpi_minutes);
  EXPECT_EQ(result.metrics.gauge("mpi.hidden_minutes"),
            result.hidden_mpi_minutes);
}

// ---------------------------------------------------------------------
// Flight recorder: ring behaviour and contention.

TEST(ObservabilityFlightRing, RecordsAreDecodableInSequenceOrder) {
  FlightRecorder& fr = FlightRecorder::process();
  const u64 before = fr.recorded();
  fr.record(FlightKind::Launch, 42, 3, 1.5, -1, 7, 4096);
  fr.note(FlightNote::ExplicitDump, 42, 9);
  const auto events = fr.snapshot();
  ASSERT_GE(events.size(), 2u);
  // Our two events are the newest; find them at the tail.
  const telemetry::FlightEvent& launch = events[events.size() - 2];
  const telemetry::FlightEvent& note = events.back();
  EXPECT_EQ(launch.seq, before);
  EXPECT_EQ(launch.kind, FlightKind::Launch);
  EXPECT_EQ(launch.trace_id, 42u);
  EXPECT_EQ(launch.rank, 3);
  EXPECT_EQ(launch.payload, 4096);
  EXPECT_EQ(launch.array, 7);
  EXPECT_EQ(note.kind, FlightKind::JobNote);
  EXPECT_EQ(note.detail, static_cast<unsigned char>(FlightNote::ExplicitDump));
  EXPECT_EQ(note.payload, 9);
}

TEST(ObservabilityFlightRing, DisabledRecorderIsANoop) {
  FlightRecorder& fr = FlightRecorder::process();
  fr.set_enabled(false);
  const u64 before = fr.recorded();
  fr.record(FlightKind::Sync, 0, 0, 0.0, -1, -1, 0);
  EXPECT_EQ(fr.recorded(), before);
  fr.set_enabled(true);
}

TEST(ObservabilityFlightRing, ContendedWritersNeverTearASnapshot) {
  // Writers lap the ring many times over while readers snapshot
  // concurrently; every decoded event must be internally consistent
  // (kind/payload stored by the same writer). Run under TSan in CI.
  FlightRecorder& fr = FlightRecorder::process();
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50000;  // ~24x ring capacity in total
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&fr, &go, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerWriter; ++i)
        fr.record(FlightKind::Launch, static_cast<u64>(w) + 1, w,
                  static_cast<double>(i), /*site=*/-1, /*array=*/w,
                  /*payload=*/(static_cast<i64>(w) << 32) | i);
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&fr, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto events = fr.snapshot();
      for (const telemetry::FlightEvent& e : events) {
        if (e.kind != FlightKind::Launch || e.trace_id == 0) continue;
        // payload encodes (writer, i); writer must match trace_id - 1.
        const i64 writer = e.payload >> 32;
        if (e.trace_id >= 1 && e.trace_id <= kWriters) {
          EXPECT_EQ(writer, static_cast<i64>(e.trace_id) - 1);
        }
      }
    }
  });
  const u64 before = fr.recorded();
  go.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(fr.recorded() - before,
            static_cast<u64>(kWriters) * kPerWriter);
  // A final quiescent snapshot decodes the full retained window.
  EXPECT_EQ(fr.snapshot().size(), FlightRecorder::kCapacity);
}

// ---------------------------------------------------------------------
// Flight dump from a seeded bug: provenance back to file:line.

TEST(ObservabilityFlightDump, SeededValidatorErrorDumpsWithProvenance) {
  const std::string path =
      ::testing::TempDir() + "simas_flight_validator.json";
  std::remove(path.c_str());

  // Inject the dump path through a test-local SimContext: engines read
  // the env snapshot from their context, never from getenv() directly.
  par::EnvConfig env;  // defaults: validate off, fatal off
  env.flight_dump = path;
  par::SimContext ctx(env);

  par::EngineConfig cfg;
  cfg.validate = true;
  cfg.host_threads = 1;
  cfg.ctx = &ctx;
  cfg.trace_id = 77;
  const int seed_line = __LINE__ + 2;  // the SIMAS_SITE line below
  static const par::KernelSite& site =
      SIMAS_SITE("obs_dump_w", SiteKind::ParallelLoop, 0);
  {
    par::Engine eng(cfg);
    field::Field f(eng, "obs_dump_a", 4, 4, 4);
    f.enter_data();
    // The classic seeded bug: every iteration writes element (0,0,0),
    // declared honestly as a scatter write — a duplicate-write error.
    eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4},
                 {par::out_scatter(f.id())}, [&](idx i, idx j, idx k) {
                   f(0, 0, 0) = static_cast<real>(i + j + k);
                 });
    eng.device_sync();
    f.exit_data();
    const auto report = eng.take_validation_report();
    ASSERT_GT(report.errors(), 0);  // this triggered the dump
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flight dump not written to " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(buf.str(), &doc, &err)) << err;
  ASSERT_NE(doc.find("reason"), nullptr);
  EXPECT_EQ(doc.find("reason")->as_string(), "validator_error");

  // Locate the faulting launch in the event window and walk its
  // provenance back to this file and the SIMAS_SITE line.
  const json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  bool found_launch = false, found_note = false;
  for (const json::Value& ev : events->as_array()) {
    const json::Value* site_name = ev.find("site");
    if (site_name != nullptr && site_name->is_string() &&
        site_name->as_string() == "obs_dump_w") {
      found_launch = true;
      EXPECT_EQ(ev.find("kind")->as_string(), "launch");
      EXPECT_EQ(ev.find("trace_id")->as_number(), 77.0);
      const json::Value* where = ev.find("where");
      ASSERT_NE(where, nullptr);
      const std::string& loc = where->as_string();
      EXPECT_NE(loc.find("test_observability.cpp"), std::string::npos) << loc;
      const std::size_t colon = loc.rfind(':');
      ASSERT_NE(colon, std::string::npos);
      EXPECT_EQ(std::stoi(loc.substr(colon + 1)), seed_line) << loc;
    }
    const json::Value* note = ev.find("note");
    if (note != nullptr && note->as_string() == "validator_error")
      found_note = true;
  }
  EXPECT_TRUE(found_launch)
      << "faulting launch missing from the flight dump";
  EXPECT_TRUE(found_note);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Metrics registry: bucket audit + snapshot-while-writing discipline.

TEST(ObservabilityRegistry, HistogramTracksExactMaxAndCustomBounds) {
  telemetry::Registry reg;
  const std::array<double, 3> bounds = {1.0, 2.0, 4.0};
  telemetry::Histogram h = reg.histogram("obs.latency", bounds);
  h.observe(0.5);
  h.observe(3.0);
  h.observe(25.0);  // long tail: overflow bucket, exact max retained
  const auto snap = reg.snapshot();
  const telemetry::MetricSample* s = snap.find("obs.latency");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->bounds.size(), 3u);
  EXPECT_EQ(s->bounds[2], 4.0);
  ASSERT_EQ(s->buckets.size(), 4u);
  EXPECT_EQ(s->buckets[3], 1);  // the tail sample
  EXPECT_EQ(s->count, 3);
  EXPECT_EQ(s->max, 25.0);
}

TEST(ObservabilityRegistry, MergeKeepsTheLargestObservedMax) {
  telemetry::Registry a, b, c;
  const std::array<double, 2> bounds = {1.0, 2.0};
  a.histogram("m", bounds).observe(1.5);
  b.histogram("m", bounds).observe(9.0);
  (void)c.histogram("m", bounds);  // no samples: max is meaningless
  auto snap = a.snapshot();
  snap.merge_from(b.snapshot());
  snap.merge_from(c.snapshot());
  const telemetry::MetricSample* s = snap.find("m");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2);
  EXPECT_EQ(s->max, 9.0);
}

TEST(ObservabilityRegistry, SnapshotWhileWritingUnderTheServerDiscipline) {
  // The registry itself is rank-local by design; cross-thread use goes
  // through an external mutex (exactly what JobServer does). This test
  // runs that discipline hot — mutating writers racing a snapshotting
  // reader — and is part of the TSan CI job: if the discipline were not
  // sufficient, TSan would flag the registry internals.
  telemetry::Registry reg;
  std::mutex mu;
  telemetry::Counter ctr;
  telemetry::Histogram hist;
  {
    std::lock_guard<std::mutex> lock(mu);
    ctr = reg.counter("obs.ops");
    const std::array<double, 2> bounds = {0.5, 1.0};
    hist = reg.histogram("obs.h", bounds);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::lock_guard<std::mutex> lock(mu);
        ctr.add(1);
        hist.observe(0.25 * (i % 8));
      }
    });
  }
  i64 last_seen = 0;
  while (!stop.load()) {
    telemetry::MetricsSnapshot snap;
    {
      std::lock_guard<std::mutex> lock(mu);
      snap = reg.snapshot();
    }
    const i64 v = snap.counter("obs.ops");
    EXPECT_GE(v, last_seen);  // monotone under the lock
    last_seen = v;
    if (v >= 3 * 20000) stop.store(true);
  }
  for (auto& t : writers) t.join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(reg.snapshot().counter("obs.ops"), 3 * 20000);
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(ObservabilityPrometheus, ExposesCounterGaugeHistogramWithMax) {
  telemetry::Registry reg;
  reg.counter("jobs.completed").add(5);
  reg.gauge("queue.depth").set(2.0);
  const std::array<double, 2> bounds = {0.1, 1.0};
  telemetry::Histogram h = reg.histogram("jobs.latency_seconds", bounds);
  h.observe(0.05);
  h.observe(30.0);
  const std::string text = telemetry::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE simas_jobs_completed counter\n"
                      "simas_jobs_completed 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("simas_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("simas_jobs_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("simas_jobs_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("simas_jobs_latency_seconds_max 30\n"),
            std::string::npos);
  // Dotted metric names sanitize to underscores (dots in `le` label
  // *values* are legitimate exposition syntax).
  EXPECT_NE(text.find("simas_jobs_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("simas_jobs."), std::string::npos);
}

// ---------------------------------------------------------------------
// perf_check --summary digest.

TEST(ObservabilityPerfSummary, RanksWorstRelativeRegressionFirst) {
  json::Value base, cur;
  base.set("small_drift", json::Value(100.0));
  base.set("big_drift", json::Value(10.0));
  base.set("gone", json::Value(1.0));
  cur.set("small_drift", json::Value(101.0));  // +1%
  cur.set("big_drift", json::Value(15.0));     // +50%
  const telemetry::Comparison cmp =
      telemetry::compare(base, cur, {});  // exact-match default
  EXPECT_EQ(cmp.failures, 3u);
  std::ostringstream os;
  cmp.print_summary(os, 2);
  const std::string text = os.str();
  EXPECT_NE(text.find("top 2 of 3"), std::string::npos) << text;
  // big_drift (50%) must outrank small_drift (1%).
  EXPECT_LT(text.find("big_drift"), text.find("small_drift")) << text;
  EXPECT_NE(text.find("1 more"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Traced serving end to end: span records + Perfetto job tracks.

bench_support::ExperimentConfig tiny_cfg(u64 seed) {
  bench_support::ExperimentConfig cfg;
  cfg.version = variants::CodeVersion::A;
  cfg.nranks = 1;
  cfg.grid = bench_support::bench_grid();
  cfg.warmup_steps = 0;
  cfg.measure_steps = 1;
  cfg.boundary.enabled = true;
  cfg.boundary.seed = seed;
  cfg.boundary.tol = 1.0e-4;
  return cfg;
}

TEST(ObservabilityServing, TracedJobsYieldCompleteSpanTrees) {
  service::JobServerConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 8;
  scfg.host_threads_total = 2;
  scfg.autostart = false;
  scfg.trace = true;
  scfg.completed_ring = 4;
  service::JobServer server(scfg);
  for (i64 id = 0; id < 6; ++id) {
    service::JobDescription d;
    d.id = id;
    d.name = "traced";
    d.config = tiny_cfg(60);
    ASSERT_TRUE(server.submit(std::move(d)));
  }
  server.start();
  const auto results = server.drain();
  ASSERT_EQ(results.size(), 6u);
  std::set<u64> trace_ids;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.spans.ctx.active());
    trace_ids.insert(r.spans.ctx.trace_id);
    std::string why;
    EXPECT_TRUE(r.spans.complete(1e-6, &why)) << "job " << r.id << ": " << why;
    EXPECT_GE(r.spans.run_host_seconds, 0.0);
    EXPECT_EQ(r.spans.job_id, static_cast<u64>(r.id));
  }
  EXPECT_EQ(trace_ids.size(), 6u);  // one distinct trace per job

  // The completed ring retains the newest N records.
  const auto recent = server.recent_completed();
  EXPECT_EQ(recent.size(), 4u);

  // Perfetto job-track export round-trips through the strict parser.
  std::ostringstream os;
  std::vector<telemetry::JobSpanRecord> spans;
  for (const auto& r : results) spans.push_back(r.spans);
  telemetry::write_job_spans_json(os, spans);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), &doc, &err)) << err;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int process_rows = 0;
  for (const json::Value& ev : events->as_array())
    if (ev.find("name") != nullptr && ev.find("name")->is_string() &&
        ev.find("name")->as_string() == "process_name")
      ++process_rows;
  EXPECT_EQ(process_rows, 6);  // one track per job
}

// ---------------------------------------------------------------------
// Introspection surface: live scrape mid-run.

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<unsigned short>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(ObservabilityIntrospection, ScrapesHealthMetricsAndJobsMidRun) {
  service::JobServerConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 16;
  scfg.host_threads_total = 2;
  scfg.autostart = false;
  scfg.trace = true;
  service::JobServer server(scfg);
  service::IntrospectionServer surface(server);
  ASSERT_GT(surface.port(), 0);

  for (i64 id = 0; id < 10; ++id) {
    service::JobDescription d;
    d.id = id;
    d.name = "scrape";
    d.config = tiny_cfg(61);
    ASSERT_TRUE(server.submit(std::move(d)));
  }
  server.start();  // jobs are now in flight

  // Scrape all three endpoints live, while the batch is being served.
  EXPECT_EQ(http_get(surface.port(), "/healthz"), "ok\n");
  const std::string metrics = http_get(surface.port(), "/metrics");
  EXPECT_NE(metrics.find("simas_jobs_submitted 10"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE simas_jobs_latency_seconds histogram"),
            std::string::npos);
  const std::string jobs_body = http_get(surface.port(), "/jobs");
  json::Value mid;
  std::string err;
  ASSERT_TRUE(json::parse(jobs_body, &mid, &err)) << err << "\n" << jobs_body;
  ASSERT_NE(mid.find("queue"), nullptr);
  EXPECT_EQ(mid.find("queue")->find("capacity")->as_number(), 16.0);
  ASSERT_NE(mid.find("in_flight"), nullptr);
  ASSERT_NE(mid.find("recent_completed"), nullptr);

  EXPECT_EQ(http_get(surface.port(), "/nope"), "not found\n");

  const auto results = server.drain();
  ASSERT_EQ(results.size(), 10u);

  // Post-drain, the completed ring is visible with latency attribution.
  json::Value done;
  ASSERT_TRUE(json::parse(http_get(surface.port(), "/jobs"), &done, &err))
      << err;
  const json::Value* completed = done.find("recent_completed");
  ASSERT_NE(completed, nullptr);
  ASSERT_FALSE(completed->as_array().empty());
  const json::Value& rec = completed->as_array().front();
  ASSERT_NE(rec.find("attribution"), nullptr);
  EXPECT_NE(rec.find("attribution")->find("compute_seconds"), nullptr);
  surface.stop();
  // stop() is idempotent and the destructor tolerates a stopped server.
  surface.stop();
}

}  // namespace
}  // namespace simas
