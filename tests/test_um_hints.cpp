// Unified-memory hint tests: the MemHintOp stream-IR plumbing (kind /
// site / signature / certificate hash), engine-level gating (hints are
// not even recorded outside Unified-on-GPU), the static verifier's
// hint-correctness rules on seeded streams (a wrong-span prefetch and a
// use-after-evict both surface as warnings), the preferred-host
// suppression that keeps honest zero-copy staging quiet, certificate
// minting/replay with hint ops in the stream, and the randomized
// differential property that um_hints never changes physics.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "analysis/diagnostics.hpp"
#include "analysis/stream_capture.hpp"
#include "bench_support/run_experiment.hpp"
#include "field/field.hpp"
#include "par/engine.hpp"
#include "par/env_config.hpp"
#include "par/graph_cache.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

using analysis::Check;
using analysis::ValidationReport;
using par::MemHint;
using par::SiteKind;

par::EngineConfig unified_config() {
  par::EngineConfig cfg;
  cfg.memory = gpusim::MemoryMode::Unified;
  cfg.validate = true;
  cfg.capture_stream = true;
  cfg.host_threads = 1;
  return cfg;
}

i64 fbytes(const field::Field& f) {
  return f.engine().memory().record(f.id()).bytes;
}

void scrub(par::Engine& eng) {
  eng.device_sync();
  (void)eng.take_validation_report();
}

// ---------------------------------------------------------------------
// 1. Stream-IR plumbing: hint ops are first-class ops with their own
//    identity in signatures and certificate hashes.

par::StreamOp hint_op(gpusim::ArrayId id, MemHint h, par::Span span,
                      i64 bytes) {
  par::MemHintOp op;
  op.id = id;
  op.hint = h;
  op.span = span;
  op.bytes = bytes;
  return par::StreamOp{op};
}

TEST(MemHintOps, KindSiteCellsAndSignature) {
  const par::StreamOp a =
      hint_op(3, MemHint::PrefetchToDevice, par::Span::Full, 4096);
  EXPECT_EQ(par::op_kind(a), par::OpKind::MemHint);
  EXPECT_EQ(par::op_site(a), nullptr);  // emitted without a kernel site
  EXPECT_EQ(par::op_cells(a), 0);       // hints have no iteration space

  // Signature equality covers (array, hint, span, bytes): two hints at
  // the same (null) site are still different ops if any differ.
  EXPECT_TRUE(par::same_signature(
      a, hint_op(3, MemHint::PrefetchToDevice, par::Span::Full, 4096)));
  EXPECT_FALSE(par::same_signature(
      a, hint_op(4, MemHint::PrefetchToDevice, par::Span::Full, 4096)));
  EXPECT_FALSE(par::same_signature(
      a, hint_op(3, MemHint::PrefetchToHost, par::Span::Full, 4096)));
  EXPECT_FALSE(par::same_signature(
      a, hint_op(3, MemHint::PrefetchToDevice, par::Span::GhostLo, 4096)));
  EXPECT_FALSE(par::same_signature(
      a, hint_op(3, MemHint::PrefetchToDevice, par::Span::Full, 8192)));
}

TEST(MemHintOps, CertificateHashSeparatesDifferentHints) {
  const u64 h0 = par::kStreamHashSeed;
  const u64 ha = par::hash_op_signature(
      h0, hint_op(3, MemHint::PrefetchToDevice, par::Span::Full, 4096));
  const u64 hb = par::hash_op_signature(
      h0, hint_op(3, MemHint::PrefetchToDevice, par::Span::Full, 8192));
  const u64 hc = par::hash_op_signature(
      h0, hint_op(3, MemHint::AdviseReadMostly, par::Span::Full, 4096));
  EXPECT_NE(ha, hb);
  EXPECT_NE(ha, hc);
  EXPECT_NE(hb, hc);
  // Deterministic: the same op folds to the same hash.
  EXPECT_EQ(ha, par::hash_op_signature(
                    h0, hint_op(3, MemHint::PrefetchToDevice,
                                par::Span::Full, 4096)));
}

// ---------------------------------------------------------------------
// 2. Engine gating: hints are UM-on-GPU-only. Under Manual memory or on
//    a host engine they are not recorded, not costed, not anything.

TEST(MemHintOps, ManualMemoryEngineRecordsNoHints) {
  par::EngineConfig cfg = unified_config();
  cfg.memory = gpusim::MemoryMode::Manual;
  par::Engine eng(cfg);
  field::Field f(eng, "uh_manual", 4, 4, 4);
  const i64 before = eng.stream_capture()->ops();
  eng.mem_prefetch(f.id(), fbytes(f));
  eng.mem_advise(f.id(), MemHint::AdvisePreferredHost);
  EXPECT_EQ(eng.stream_capture()->ops(), before);
  scrub(eng);
}

TEST(MemHintOps, HostEngineRecordsNoHints) {
  par::EngineConfig cfg = unified_config();
  cfg.gpu = false;
  par::Engine eng(cfg);
  field::Field f(eng, "uh_host", 4, 4, 4);
  const i64 before = eng.stream_capture()->ops();
  eng.mem_prefetch(f.id(), fbytes(f));
  EXPECT_EQ(eng.stream_capture()->ops(), before);
  scrub(eng);
}

TEST(MemHintOps, UnifiedGpuEngineRecordsAndCostsHints) {
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_um", 4, 4, 4);
  const i64 before = eng.stream_capture()->ops();
  eng.mem_prefetch(f.id(), fbytes(f));
  eng.mem_advise(f.id(), MemHint::AdviseReadMostly);
  EXPECT_EQ(eng.stream_capture()->ops(), before + 2);
  const auto& um = eng.memory().um_stats();
  EXPECT_EQ(um.prefetches, 1);
  EXPECT_EQ(um.advises, 1);
  EXPECT_EQ(um.prefetch_bytes, fbytes(f));
  scrub(eng);
}

// ---------------------------------------------------------------------
// 3. Seeded hint hazards: the static verifier flags a prefetch whose
//    declared span does not cover the next device access, and a device
//    access after the array was prefetched host-ward. Both are Warning
//    severity (performance hazards, not correctness bugs) and neither
//    trips the runtime validator.

TEST(HintVerifier, WrongSpanPrefetchIsFlagged) {
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_span_a", 4, 4, 4, 1);
  // The prefetch declares it covers only the interior, but the next
  // kernel reads the Full span: the ghost columns will demand-fault.
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Interior);
  static const par::KernelSite& site =
      SIMAS_SITE("uh_span_r", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_TRUE(st.has(Check::PrefetchSpanMismatch)) << st.to_string();
  EXPECT_EQ(st.errors(), 0) << st.to_string();  // warning, not error
  const ValidationReport rt = eng.take_validation_report();
  EXPECT_FALSE(rt.has(Check::PrefetchSpanMismatch));
  scrub(eng);
}

TEST(HintVerifier, CoveringPrefetchIsClean) {
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_span_b", 4, 4, 4, 1);
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Full);
  static const par::KernelSite& site =
      SIMAS_SITE("uh_span_ok", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_FALSE(st.has(Check::PrefetchSpanMismatch)) << st.to_string();
  EXPECT_EQ(st.warnings(), 0) << st.to_string();
  (void)eng.take_validation_report();
  scrub(eng);
}

TEST(HintVerifier, UseAfterEvictIsFlagged) {
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_evict_a", 4, 4, 4);
  static const par::KernelSite& w =
      SIMAS_SITE("uh_evict_w", SiteKind::ParallelLoop, 0);
  eng.for_each(w, par::Range3{0, 4, 0, 4, 0, 4}, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 1.0; });
  // Evict the array host-ward, then touch it from the device again with
  // no re-prefetch: the whole footprint fault-migrates straight back.
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Full, /*to_device=*/false);
  static const par::KernelSite& r =
      SIMAS_SITE("uh_evict_r", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(r, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_TRUE(st.has(Check::UseAfterEvict)) << st.to_string();
  EXPECT_EQ(st.errors(), 0) << st.to_string();
  (void)eng.take_validation_report();
  scrub(eng);
}

TEST(HintVerifier, PreferredHostSuppressesUseAfterEvict) {
  // The halo staging pattern: buffers advised PreferredHost are *meant*
  // to be device-touched while host-resident (zero-copy remote access),
  // so the use-after-evict rule must stay quiet for them.
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_evict_b", 4, 4, 4);
  eng.mem_advise(f.id(), MemHint::AdvisePreferredHost);
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Full, /*to_device=*/false);
  static const par::KernelSite& r =
      SIMAS_SITE("uh_evict_ok", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(r, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_FALSE(st.has(Check::UseAfterEvict)) << st.to_string();
  (void)eng.take_validation_report();
  scrub(eng);
}

TEST(HintVerifier, RePrefetchClearsTheEvictedState) {
  par::Engine eng(unified_config());
  field::Field f(eng, "uh_evict_c", 4, 4, 4);
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Full, /*to_device=*/false);
  eng.mem_prefetch(f.id(), fbytes(f), par::Span::Full, /*to_device=*/true);
  static const par::KernelSite& r =
      SIMAS_SITE("uh_evict_re", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(r, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_FALSE(st.has(Check::UseAfterEvict)) << st.to_string();
  (void)eng.take_validation_report();
  scrub(eng);
}

// ---------------------------------------------------------------------
// 4. Certificates with hint ops: a hinted stream mints, replays with
//    shadow checks skipped, and a replay whose hints differ fails the
//    integrity hash (hint identity is folded into the fingerprint).

par::EngineConfig certify_config(par::GraphCache* cache,
                                 const std::string& scope) {
  par::EngineConfig cfg;
  cfg.memory = gpusim::MemoryMode::Unified;
  cfg.certify = true;
  cfg.graph_cache = cache;
  cfg.graph_cache_scope = scope;
  cfg.host_threads = 1;
  return cfg;
}

void run_hinted_stream(par::Engine& eng, const std::string& field_name,
                       i64 prefetch_bytes) {
  field::Field f(eng, field_name, 4, 4, 4);
  eng.mem_prefetch(f.id(), prefetch_bytes, par::Span::Full);
  static const par::KernelSite& site =
      SIMAS_SITE("uh_cert_k", SiteKind::ParallelLoop, 0);
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 1.0; });
  eng.device_sync();
}

TEST(HintCertificates, HintedStreamMintsAndReplays) {
  if (par::EnvConfig::process().validate_fatal)
    GTEST_SKIP() << "SIMAS_VALIDATE_FATAL disables certification";
  par::GraphCache cache;
  const std::string scope = "uh_cert_scope/r0";
  {
    par::Engine eng(certify_config(&cache, scope));
    EXPECT_FALSE(eng.certified());
    run_hinted_stream(eng, "uh_cert_a", 512);
    const ValidationReport rep = eng.take_validation_report();
    EXPECT_EQ(rep.errors(), 0) << rep.to_string();
  }
  ASSERT_NE(cache.find_certificate(scope), nullptr);

  // Identical hinted stream: certified replay, fingerprint matches.
  {
    par::Engine eng(certify_config(&cache, scope));
    ASSERT_TRUE(eng.certified());
    run_hinted_stream(eng, "uh_cert_b", 512);
    EXPECT_TRUE(eng.certified_stream_matches());
  }

  // Same kernels, different prefetch bytes: the hash catches it.
  {
    par::Engine eng(certify_config(&cache, scope));
    ASSERT_TRUE(eng.certified());
    run_hinted_stream(eng, "uh_cert_c", 1024);
    EXPECT_FALSE(eng.certified_stream_matches());
  }
}

// ---------------------------------------------------------------------
// 5. Randomized differential property: um_hints only moves modeled pages
//    and time — the physics of a full solver run is bit-identical with
//    hints off and on, across randomized shapes, rank counts and halo
//    modes.

TEST(HintDifferential, PhysicsBitIdenticalWithAndWithoutHints) {
  std::mt19937 rng(2026);
  const variants::CodeVersion um_versions[] = {
      variants::CodeVersion::ADU, variants::CodeVersion::AD2XU,
      variants::CodeVersion::D2XU};
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    bench_support::ExperimentConfig cfg;
    cfg.version = um_versions[trial % 3];
    cfg.nranks = 1 + static_cast<int>(rng() % 3);
    cfg.grid.nr = 12 + static_cast<int>(rng() % 4);
    cfg.grid.nt = 8 + static_cast<int>(rng() % 4);
    cfg.grid.np = 16;
    cfg.warmup_steps = 1;
    cfg.measure_steps = 1 + static_cast<int>(rng() % 2);
    cfg.overlap_halo = (rng() % 2) == 0;

    cfg.um_hints = false;
    const auto off = bench_support::run_experiment(cfg);
    cfg.um_hints = true;
    const auto on = bench_support::run_experiment(cfg);

    EXPECT_EQ(off.final_diag.total_mass, on.final_diag.total_mass);
    EXPECT_EQ(off.final_diag.kinetic_energy, on.final_diag.kinetic_energy);
    EXPECT_EQ(off.final_diag.magnetic_energy, on.final_diag.magnetic_energy);
    EXPECT_EQ(off.final_diag.thermal_energy, on.final_diag.thermal_energy);
    EXPECT_EQ(off.final_diag.max_div_b, on.final_diag.max_div_b);
    EXPECT_EQ(off.final_diag.max_speed, on.final_diag.max_speed);
    // ...and the hints actually did something: the demand faults of the
    // hint-free run disappear.
    EXPECT_GT(off.metrics.counter("um.faults"), 0);
    EXPECT_GT(on.metrics.counter("um.prefetches"), 0);
    EXPECT_LT(on.metrics.counter("um.faults"),
              off.metrics.counter("um.faults"));
  }
}

}  // namespace
}  // namespace simas
