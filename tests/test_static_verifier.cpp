// Static kernel-stream verifier tests: the table-driven seeded-bug suite
// (every hazard class planted deliberately, detected both statically and
// at runtime), the differential superset property (on honestly-declared
// streams the static findings cover every runtime finding), span-
// disjointness clean cases, and the verified-stream certificate
// lifecycle (mint -> replay with shadow checks skipped -> integrity
// hash at teardown).

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "field/field.hpp"
#include "mhd/solver.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/decomposition.hpp"
#include "mpisim/halo.hpp"
#include "par/engine.hpp"
#include "par/env_config.hpp"
#include "par/graph_cache.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

using analysis::Check;
using analysis::ValidationReport;
using par::SiteKind;

par::EngineConfig capture_config() {
  par::EngineConfig cfg;  // Acc / Manual / gpu / fusion+async on
  cfg.validate = true;
  cfg.capture_stream = true;
  cfg.host_threads = 1;
  return cfg;
}

// Leave the engine clean and fully drained so destruction never trips the
// fatal path when CI forces SIMAS_VALIDATE_FATAL=1.
void scrub(par::Engine& eng, std::initializer_list<field::Field*> fields) {
  eng.device_sync();
  for (field::Field* f : fields) f->exit_data();
  (void)eng.take_validation_report();
}

/// Both analyses' findings over one seeded stream.
struct Reports {
  ValidationReport runtime;
  ValidationReport statics;
};

/// The differential property the analyzer is designed around: the static
/// pass trusts declarations and flags conservatively, so on an honestly-
/// declared stream every runtime finding must also be found statically.
/// (UndeclaredAccess / DeclaredWriteNotTouched need observed element
/// touches and are runtime-only by design — the seeded streams declare
/// honestly, so they must not appear at all.)
void expect_static_superset(const Reports& r) {
  for (const analysis::Diagnostic& d : r.runtime.diagnostics) {
    EXPECT_NE(d.check, Check::UndeclaredAccess)
        << "seeded stream must declare honestly: " << d.to_string();
    EXPECT_NE(d.check, Check::DeclaredWriteNotTouched)
        << "seeded stream must declare honestly: " << d.to_string();
    if (d.check == Check::UndeclaredAccess ||
        d.check == Check::DeclaredWriteNotTouched)
      continue;
    EXPECT_TRUE(r.statics.has(d.check))
        << "runtime finding missing from static report: " << d.to_string()
        << "\nstatic report:\n"
        << r.statics.to_string();
  }
}

// ---------------------------------------------------------------------
// 1. Table-driven seeded-bug suite. Each entry plants one hazard class;
//    both the runtime validator (element-exact) and the static verifier
//    (declaration-driven, zero kernels executed) must flag it.

// Bug 1: duplicate write — every iteration of a plain parallel loop hits
// element (0,0,0), declared honestly as a scatter write. Illegal DC.
Reports seed_duplicate_write() {
  par::Engine eng(capture_config());
  field::Field f(eng, "sv_dup_a", 4, 4, 4);
  f.enter_data();
  static const par::KernelSite& site =
      SIMAS_SITE("sv_dup_w", SiteKind::ParallelLoop, 0);
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4},
               {par::out_scatter(f.id())}, [&](idx i, idx j, idx k) {
                 f(0, 0, 0) = static_cast<real>(i + j + k);
               });
  Reports r;
  r.runtime = eng.take_validation_report();
  r.statics = eng.static_verify();
  scrub(eng, {&f});
  return r;
}

// Bug 2: two kernels share a fusion group and both pure-write every
// element of the same array — the merged launch would race.
Reports seed_fused_conflict() {
  par::Engine eng(capture_config());
  field::Field f(eng, "sv_fuse_a", 4, 4, 4);
  f.enter_data();
  static const par::KernelSite& s1 =
      SIMAS_SITE("sv_fuse_w1", SiteKind::ParallelLoop, 91);
  static const par::KernelSite& s2 =
      SIMAS_SITE("sv_fuse_w2", SiteKind::ParallelLoop, 91);
  const par::Range3 r3{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r3, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 1.0; });
  eng.for_each(s2, r3, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 2.0; });
  Reports r;
  r.runtime = eng.take_validation_report();
  r.statics = eng.static_verify();
  scrub(eng, {&f});
  return r;
}

// Bug 3: host pulls an array while device writes are still in flight on
// the async queue — no device_sync before the copyout.
Reports seed_copyout_without_sync() {
  par::Engine eng(capture_config());
  field::Field f(eng, "sv_sync_a", 4, 4, 4);
  f.enter_data();
  static const par::KernelSite& site =
      SIMAS_SITE("sv_sync_w", SiteKind::ParallelLoop, 0);
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 1.0; });
  f.update_host();  // missing eng.device_sync()
  Reports r;
  r.runtime = eng.take_validation_report();
  r.statics = eng.static_verify();
  scrub(eng, {&f});
  return r;
}

// Bug 4: a kernel whose declared (and actual) radial footprint covers the
// ghost columns of an unfinished overlapped exchange.
Reports seed_inflight_ghost_read() {
  Reports r;
  mpisim::World world(2);
  world.run([&](int rank) {
    par::EngineConfig cfg = capture_config();
    cfg.overlap_halo = true;
    par::Engine eng(cfg);
    mpisim::Comm comm(world, rank, eng);
    const mpisim::Slab slab = mpisim::radial_slab(8, 2, rank);
    const idx n = slab.n();
    mpisim::HaloExchanger halo(eng, comm, slab, n, 4, 4);
    field::Field f(eng, "sv_ghost_a", n, 4, 4, 1);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_ghost_r", SiteKind::ParallelLoop, 0);
    const int h = halo.begin_exchange_r({&f});
    real sum = 0.0;
    eng.for_each(site, par::Range3{0, n, 0, 4, 0, 4}, {par::in(f.id())},
                 [&](idx i, idx j, idx k) {
                   sum += f(i - 1, j, k) + f(i + 1, j, k);
                 });
    halo.finish_exchange_r(h);
    if (rank == 0) {
      r.runtime = eng.take_validation_report();
      r.statics = eng.static_verify();
    }
    scrub(eng, {&f});
  });
  return r;
}

struct SeededBug {
  const char* name;
  Check expected;
  std::function<Reports()> run;
};

TEST(SeededBugs, StaticAndRuntimeBothDetectEveryPattern) {
  const std::vector<SeededBug> table = {
      {"duplicate_write", Check::DuplicateWrite, seed_duplicate_write},
      {"fused_conflict", Check::FusedConflict, seed_fused_conflict},
      {"copyout_without_sync", Check::AsyncHostAccessNoSync,
       seed_copyout_without_sync},
      {"inflight_ghost_read", Check::InflightGhostRead,
       seed_inflight_ghost_read},
  };
  for (const SeededBug& bug : table) {
    SCOPED_TRACE(bug.name);
    const Reports r = bug.run();
    EXPECT_TRUE(r.runtime.has(bug.expected))
        << "runtime missed it:\n" << r.runtime.to_string();
    EXPECT_TRUE(r.statics.has(bug.expected))
        << "static missed it:\n" << r.statics.to_string();
    EXPECT_GT(r.statics.errors(), 0);
    expect_static_superset(r);
    // The static diagnostic must carry SiteTable provenance (file:line of
    // the registering SIMAS_SITE) so the lint report is actionable.
    const analysis::Diagnostic* d = r.statics.find(bug.expected);
    ASSERT_NE(d, nullptr);
    if (bug.expected != Check::AsyncHostAccessNoSync)  // data-API event
      EXPECT_NE(d->location.find(':'), std::string::npos) << d->to_string();
  }
}

// ---------------------------------------------------------------------
// 2. Span semantics: disjoint declared spans are clean; over-declared
//    spans are flagged conservatively (static strictly ⊇ runtime).

TEST(Spans, DisjointGhostWritesInOneFusionGroupAreClean) {
  // The real group-12 pattern: the inner-wall kernel writes the low ghost,
  // the outer-wall kernel the high ghost. Same fusion group, no overlap.
  par::Engine eng(capture_config());
  field::Field f(eng, "sv_span_a", 4, 4, 4, 1);
  f.enter_data();
  static const par::KernelSite& lo =
      SIMAS_SITE("sv_span_lo", SiteKind::ParallelLoop, 92);
  static const par::KernelSite& hi =
      SIMAS_SITE("sv_span_hi", SiteKind::ParallelLoop, 92);
  const par::Range3 r3{0, 4, 0, 4, 0, 1};
  eng.for_each(lo, r3, {par::out_ghost_lo(f.id())},
               [&](idx j, idx k, idx) { f(-1, j, k) = 1.0; });
  eng.for_each(hi, r3, {par::out_ghost_hi(f.id())},
               [&](idx j, idx k, idx) { f(4, j, k) = 2.0; });
  const Reports r{eng.take_validation_report(), eng.static_verify()};
  EXPECT_FALSE(r.statics.has(Check::FusedConflict)) << r.statics.to_string();
  EXPECT_FALSE(r.runtime.has(Check::FusedConflict)) << r.runtime.to_string();
  EXPECT_EQ(r.statics.errors(), 0) << r.statics.to_string();
  scrub(eng, {&f});
}

TEST(Spans, InteriorReadDuringOverlapWindowIsClean) {
  mpisim::World world(2);
  world.run([&](int rank) {
    par::EngineConfig cfg = capture_config();
    cfg.overlap_halo = true;
    par::Engine eng(cfg);
    mpisim::Comm comm(world, rank, eng);
    const mpisim::Slab slab = mpisim::radial_slab(8, 2, rank);
    const idx n = slab.n();
    mpisim::HaloExchanger halo(eng, comm, slab, n, 4, 4);
    field::Field f(eng, "sv_span_b", n, 4, 4, 1);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_span_int", SiteKind::ParallelLoop, 0);
    const int h = halo.begin_exchange_r({&f});
    real sum = 0.0;
    // Pointwise read over owned planes, declared Interior: never touches
    // the in-flight ghosts, statically provable from the span alone.
    eng.for_each(site, par::Range3{0, n, 0, 4, 0, 4},
                 {par::in_interior(f.id())},
                 [&](idx i, idx j, idx k) { sum += f(i, j, k); });
    halo.finish_exchange_r(h);
    const Reports r{eng.take_validation_report(), eng.static_verify()};
    EXPECT_FALSE(r.statics.has(Check::InflightGhostRead))
        << r.statics.to_string();
    EXPECT_EQ(r.statics.errors(), 0) << r.statics.to_string();
    EXPECT_EQ(r.runtime.errors(), 0) << r.runtime.to_string();
    scrub(eng, {&f});
  });
}

TEST(Spans, OverdeclaredFullSpanIsFlaggedOnlyStatically) {
  // The body reads owned planes only, but the declaration says Full: the
  // static pass trusts the declaration and flags conservatively, while
  // the element-exact runtime validator stays quiet. Static ⊇ runtime,
  // strictly here.
  mpisim::World world(2);
  world.run([&](int rank) {
    par::EngineConfig cfg = capture_config();
    cfg.overlap_halo = true;
    par::Engine eng(cfg);
    mpisim::Comm comm(world, rank, eng);
    const mpisim::Slab slab = mpisim::radial_slab(8, 2, rank);
    const idx n = slab.n();
    mpisim::HaloExchanger halo(eng, comm, slab, n, 4, 4);
    field::Field f(eng, "sv_span_c", n, 4, 4, 1);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_span_over", SiteKind::ParallelLoop, 0);
    const int h = halo.begin_exchange_r({&f});
    real sum = 0.0;
    eng.for_each(site, par::Range3{0, n, 0, 4, 0, 4}, {par::in(f.id())},
                 [&](idx i, idx j, idx k) { sum += f(i, j, k); });
    halo.finish_exchange_r(h);
    const Reports r{eng.take_validation_report(), eng.static_verify()};
    EXPECT_TRUE(r.statics.has(Check::InflightGhostRead))
        << r.statics.to_string();
    EXPECT_FALSE(r.runtime.has(Check::InflightGhostRead))
        << r.runtime.to_string();
    scrub(eng, {&f});
  });
}

// ---------------------------------------------------------------------
// 3. Real solver streams: the production op stream (overlapped exchange
//    included) must verify statically clean — the same property the
//    simas_lint CLI sweeps across every version x backend in CI.

TEST(RealStream, OverlappedSolverStreamVerifiesClean) {
  mpisim::World world(2);
  world.run([&](int rank) {
    par::EngineConfig ecfg = variants::engine_config(
        variants::CodeVersion::A, gpusim::a100_40gb(), 2);
    ecfg.validate = true;
    ecfg.capture_stream = true;
    ecfg.overlap_halo = true;
    par::Engine engine(ecfg);
    mpisim::Comm comm(world, rank, engine);
    {
      mhd::SolverConfig scfg;
      scfg.grid.nr = 14;
      scfg.grid.nt = 10;
      scfg.grid.np = 16;
      mhd::MasSolver solver(engine, comm, scfg);
      solver.initialize();
      solver.run(2);
    }
    const ValidationReport st = engine.static_verify();
    EXPECT_EQ(st.errors(), 0) << st.to_string();
    EXPECT_GT(st.ops_checked, 0);
    const ValidationReport rt = engine.take_validation_report();
    EXPECT_EQ(rt.errors(), 0) << rt.to_string();
  });
}

// ---------------------------------------------------------------------
// 4. Certificate lifecycle: validate + capture on first run, mint when
//    both analyses come back clean, skip shadow checks on replay, match
//    the integrity hash at teardown.

par::EngineConfig certify_config(par::GraphCache* cache,
                                 const std::string& scope) {
  par::EngineConfig cfg;
  cfg.certify = true;
  cfg.graph_cache = cache;
  cfg.graph_cache_scope = scope;
  cfg.host_threads = 1;
  return cfg;
}

void run_clean_stream(par::Engine& eng, const std::string& field_name) {
  field::Field f(eng, field_name, 4, 4, 4);
  f.enter_data();
  static const par::KernelSite& site =
      SIMAS_SITE("sv_cert_k", SiteKind::ParallelLoop, 0);
  for (int n = 0; n < 3; ++n) {
    eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::out(f.id())},
                 [&](idx i, idx j, idx k) { f(i, j, k) = real(n); });
  }
  eng.device_sync();
  f.exit_data();
}

TEST(Certificates, CleanFirstRunMintsAndReplaySkipsShadowChecks) {
  if (par::EnvConfig::process().validate_fatal)
    GTEST_SKIP() << "SIMAS_VALIDATE_FATAL disables certification";
  par::GraphCache cache;
  const std::string scope = "sv_cert_scope/r0";

  // First run: no certificate yet -> certify forces validate + capture.
  {
    par::Engine eng(certify_config(&cache, scope));
    EXPECT_FALSE(eng.certified());
    EXPECT_NE(eng.validator(), nullptr);
    EXPECT_NE(eng.stream_capture(), nullptr);
    run_clean_stream(eng, "sv_cert_a");
    const ValidationReport rep = eng.take_validation_report();
    EXPECT_EQ(rep.errors(), 0) << rep.to_string();
  }
  EXPECT_EQ(cache.stats().cert_publishes, 1);
  EXPECT_NE(cache.find_certificate(scope), nullptr);

  // Replay: certificate found -> no validator, no capture; the live
  // integrity hash over the identical stream matches at teardown.
  {
    par::Engine eng(certify_config(&cache, scope));
    EXPECT_TRUE(eng.certified());
    EXPECT_EQ(eng.validator(), nullptr);
    EXPECT_EQ(eng.stream_capture(), nullptr);
    run_clean_stream(eng, "sv_cert_b");
    EXPECT_TRUE(eng.certified_stream_matches());
  }
  EXPECT_GE(cache.stats().cert_hits, 1);
}

TEST(Certificates, DirtyStreamMintsNothing) {
  if (par::EnvConfig::process().validate_fatal)
    GTEST_SKIP() << "SIMAS_VALIDATE_FATAL disables certification";
  par::GraphCache cache;
  const std::string scope = "sv_cert_dirty/r0";
  {
    par::Engine eng(certify_config(&cache, scope));
    field::Field f(eng, "sv_cert_c", 4, 4, 4);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_cert_dup", SiteKind::ParallelLoop, 0);
    eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4},
                 {par::out_scatter(f.id())}, [&](idx i, idx j, idx k) {
                   f(0, 0, 0) = static_cast<real>(i + j + k);
                 });
    const ValidationReport rep = eng.take_validation_report();
    EXPECT_GT(rep.errors(), 0);
    scrub(eng, {&f});
  }
  EXPECT_EQ(cache.stats().cert_publishes, 0);
  EXPECT_EQ(cache.find_certificate(scope), nullptr);
  // A later run of the same scope still validates.
  par::Engine eng(certify_config(&cache, scope));
  EXPECT_FALSE(eng.certified());
  EXPECT_NE(eng.validator(), nullptr);
  (void)eng.take_validation_report();
}

TEST(Certificates, DivergentReplayStreamFailsTheIntegrityHash) {
  if (par::EnvConfig::process().validate_fatal)
    GTEST_SKIP() << "SIMAS_VALIDATE_FATAL disables certification";
  par::GraphCache cache;
  const std::string scope = "sv_cert_div/r0";
  {
    par::Engine eng(certify_config(&cache, scope));
    run_clean_stream(eng, "sv_cert_d");
    (void)eng.take_validation_report();
  }
  ASSERT_NE(cache.find_certificate(scope), nullptr);
  par::Engine eng(certify_config(&cache, scope));
  ASSERT_TRUE(eng.certified());
  // A different stream under the same scope (the shape-key collision the
  // teardown check exists to catch): one extra kernel.
  run_clean_stream(eng, "sv_cert_e");
  field::Field f(eng, "sv_cert_f", 4, 4, 4);
  f.enter_data();
  static const par::KernelSite& extra =
      SIMAS_SITE("sv_cert_extra", SiteKind::ParallelLoop, 0);
  eng.for_each(extra, par::Range3{0, 4, 0, 4, 0, 4}, {par::out(f.id())},
               [&](idx i, idx j, idx k) { f(i, j, k) = 9.0; });
  EXPECT_FALSE(eng.certified_stream_matches());
  eng.device_sync();
  f.exit_data();
}

TEST(Certificates, PublishRefusesUncleanOrUnscopedCertificates) {
  par::GraphCache cache;
  par::StreamCertificate cert;
  cert.scope = "";
  cert.runtime_clean = true;
  cert.static_clean = true;
  EXPECT_FALSE(cache.publish_certificate(cert));
  cert.scope = "sv_pub/r0";
  cert.runtime_clean = false;
  EXPECT_FALSE(cache.publish_certificate(cert));
  cert.runtime_clean = true;
  cert.static_clean = false;
  EXPECT_FALSE(cache.publish_certificate(cert));
  cert.static_clean = true;
  EXPECT_TRUE(cache.publish_certificate(cert));
  EXPECT_FALSE(cache.publish_certificate(cert));  // first-wins
  EXPECT_EQ(cache.stats().cert_publishes, 1);
  EXPECT_EQ(cache.stats().cert_duplicates, 1);
}

// ---------------------------------------------------------------------
// 6. Compiler personalities (the portability matrix's toolchain axis).
//    Personalities change what the analyzer may assume about lowering:
//    an atomic-block reduction is protected under every personality, and
//    a toolchain that ignores prefetch hints turns the hint-correctness
//    findings into Info notes.

// A same-element accumulation at an AtomicUpdate site is the lowering
// every personality uses for array reductions it cannot tree-reduce
// (atomic_reduce_traffic); the declared protection must silence
// DuplicateWrite in both analyses, under every personality.
TEST(Personalities, AtomicBlockAccumulationNeverTripsDuplicateWrite) {
  for (const par::CompilerPersonality p : par::all_personalities()) {
    par::EngineConfig cfg = capture_config();
    cfg.personality = p;
    par::Engine eng(cfg);
    field::Field f(eng, "sv_pers_atomic", 4, 4, 4);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_pers_atomic_w", SiteKind::AtomicUpdate, 0);
    eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4},
                 {par::in(f.id()), par::out_scatter(f.id())},
                 [&](idx, idx, idx) { f(0, 0, 0) += 1.0; });
    const ValidationReport st = eng.static_verify();
    const ValidationReport rt = eng.take_validation_report();
    EXPECT_FALSE(st.has(Check::DuplicateWrite))
        << par::personality_name(p) << ":\n"
        << st.to_string();
    EXPECT_FALSE(rt.has(Check::DuplicateWrite))
        << par::personality_name(p) << ":\n"
        << rt.to_string();
    scrub(eng, {&f});
  }
}

// Control: the identical scatter accumulation at a plain parallel-loop
// site IS the illegal-DC hazard — no personality may excuse it.
TEST(Personalities, PlainLoopScatterStillTripsDuplicateWriteEverywhere) {
  for (const par::CompilerPersonality p : par::all_personalities()) {
    par::EngineConfig cfg = capture_config();
    cfg.personality = p;
    par::Engine eng(cfg);
    field::Field f(eng, "sv_pers_plain", 4, 4, 4);
    f.enter_data();
    static const par::KernelSite& site =
        SIMAS_SITE("sv_pers_plain_w", SiteKind::ParallelLoop, 0);
    eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4},
                 {par::out_scatter(f.id())}, [&](idx i, idx j, idx k) {
                   f(0, 0, 0) = static_cast<real>(i + j + k);
                 });
    const ValidationReport st = eng.static_verify();
    EXPECT_TRUE(st.has(Check::DuplicateWrite)) << par::personality_name(p);
    (void)eng.take_validation_report();
    scrub(eng, {&f});
  }
}

// A toolchain that ignores prefetch hints (flang-like) makes a
// wrong-span prefetch inert: the finding must survive as an Info note —
// visible, but neither a warning nor an error.
TEST(Personalities, IgnoredPrefetchDowngradesSpanMismatchToNote) {
  par::EngineConfig cfg = capture_config();
  cfg.memory = gpusim::MemoryMode::Unified;
  cfg.personality = par::CompilerPersonality::Flang;
  par::Engine eng(cfg);
  field::Field f(eng, "sv_pers_span", 4, 4, 4, 1);
  eng.mem_prefetch(f.id(), eng.memory().record(f.id()).bytes,
                   par::Span::Interior);
  static const par::KernelSite& site =
      SIMAS_SITE("sv_pers_span_r", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_TRUE(st.has(Check::PrefetchSpanMismatch)) << st.to_string();
  EXPECT_EQ(st.errors(), 0) << st.to_string();
  EXPECT_EQ(st.warnings(), 0) << st.to_string();  // demoted to Info
  for (const analysis::Diagnostic& d : st.diagnostics)
    if (d.check == Check::PrefetchSpanMismatch)
      EXPECT_EQ(d.severity, analysis::Severity::Info);
  (void)eng.take_validation_report();
  scrub(eng, {&f});
}

// The same stream under the hint-honoring default keeps the Warning:
// the downgrade is a personality fact, not a blanket softening.
TEST(Personalities, HonoredPrefetchKeepsSpanMismatchAsWarning) {
  par::EngineConfig cfg = capture_config();
  cfg.memory = gpusim::MemoryMode::Unified;
  cfg.personality = par::CompilerPersonality::Nvfortran;
  par::Engine eng(cfg);
  field::Field f(eng, "sv_pers_span_w", 4, 4, 4, 1);
  eng.mem_prefetch(f.id(), eng.memory().record(f.id()).bytes,
                   par::Span::Interior);
  static const par::KernelSite& site =
      SIMAS_SITE("sv_pers_span_w_r", SiteKind::ParallelLoop, 0);
  real sum = 0.0;
  eng.for_each(site, par::Range3{0, 4, 0, 4, 0, 4}, {par::in(f.id())},
               [&](idx i, idx j, idx k) { sum += f(i, j, k); });
  const ValidationReport st = eng.static_verify();
  EXPECT_TRUE(st.has(Check::PrefetchSpanMismatch)) << st.to_string();
  EXPECT_GE(st.warnings(), 1) << st.to_string();
  (void)eng.take_validation_report();
  scrub(eng, {&f});
}

}  // namespace
}  // namespace simas
