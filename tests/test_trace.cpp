#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

namespace simas::trace {
namespace {

TEST(Recorder, DisabledByDefault) {
  Recorder r;
  r.record(0.0, 1.0, Lane::Kernel, "k");
  EXPECT_TRUE(r.events().empty());
}

TEST(Recorder, RecordsWhenEnabledAndDropsEmptyIntervals) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 1.0, Lane::Kernel, "k1");
  r.record(2.0, 2.0, Lane::Kernel, "zero-length");  // dropped
  r.record(3.0, 2.0, Lane::Kernel, "negative");     // dropped
  ASSERT_EQ(r.events().size(), 1u);
  EXPECT_EQ(r.events()[0].name, "k1");
}

TEST(Recorder, LaneBusyClipsToWindow) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 2.0, Lane::Kernel, "a");
  r.record(5.0, 6.0, Lane::Kernel, "b");
  r.record(0.5, 1.0, Lane::Migration, "m");
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 1.0, 5.5), 1.5);  // 1-2 + 5-5.5
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Migration, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Transfer, 0.0, 10.0), 0.0);
}

TEST(Recorder, LaneBusyStraddlingEventClipsAtBothEdges) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 10.0, Lane::Kernel, "long");  // spans past both window edges
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 2.0, 3.0), 1.0);
  // Window entirely outside the event.
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 11.0, 12.0), 0.0);
}

TEST(Recorder, LaneBusyZeroLengthWindowIsZero) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 2.0, Lane::Kernel, "a");
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 1.0, 1.0), 0.0);
}

TEST(Recorder, LaneBusyMergesOverlappingSameLaneEvents) {
  // Overlapping events in one lane (e.g. nested ranges, or a transfer
  // spanning several kernels) must count the lane busy once per instant:
  // busy time can never exceed the window length.
  Recorder r;
  r.enable(true);
  r.record(0.0, 2.0, Lane::Kernel, "outer");
  r.record(0.5, 1.0, Lane::Kernel, "nested");    // fully contained
  r.record(1.5, 3.0, Lane::Kernel, "straddles"); // partial overlap
  r.record(4.0, 5.0, Lane::Kernel, "separate");
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 0.0, 10.0), 4.0);  // 0-3 + 4-5
  EXPECT_LE(r.lane_busy(Lane::Kernel, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 0.0, 1.0), 1.0);
}

TEST(Recorder, AsciiRenderMarksBusyCells) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 0.5, Lane::Kernel, "k");
  std::ostringstream os;
  r.render_ascii(os, 0.0, 1.0, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("kernels"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);  // first half busy
  EXPECT_NE(out.find("um-migration"), std::string::npos);
}

TEST(Recorder, AsciiRenderHasTimeAxis) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 0.5, Lane::Kernel, "k");
  std::ostringstream os;
  r.render_ascii(os, 0.0, 2.0, 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis ticks
  EXPECT_NE(out.find("t0 = 0.0000e+00 s"), std::string::npos);
  EXPECT_NE(out.find("t1 = 2.0000e+00 s"), std::string::npos);
  EXPECT_NE(out.find("1.0000e-01 s/column"), std::string::npos);
  // The ranges lane only appears once range events exist.
  EXPECT_EQ(out.find("ranges"), std::string::npos);
  r.push_range(0.0, "phase");
  r.pop_range(1.0);
  std::ostringstream os2;
  r.render_ascii(os2, 0.0, 2.0, 20);
  EXPECT_NE(os2.str().find("ranges"), std::string::npos);
}

TEST(Recorder, CsvRoundTripFormat) {
  Recorder r;
  r.enable(true);
  r.record(0.25, 1.5, Lane::Transfer, "send->3");
  std::ostringstream os;
  r.write_csv(os);
  EXPECT_EQ(os.str(), "t0,t1,lane,depth,name\n0.25,1.5,transfer,0,send->3\n");
}

TEST(Recorder, CsvQuotesFieldsPerRfc4180) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 1.0, Lane::Kernel, "a,b");       // embedded comma
  r.record(1.0, 2.0, Lane::Kernel, "say \"hi\"");  // embedded quotes
  r.record(2.0, 3.0, Lane::Kernel, "line\nbreak");
  std::ostringstream os;
  r.write_csv(os);
  EXPECT_EQ(os.str(),
            "t0,t1,lane,depth,name\n"
            "0,1,kernels,0,\"a,b\"\n"
            "1,2,kernels,0,\"say \"\"hi\"\"\"\n"
            "2,3,kernels,0,\"line\nbreak\"\n");
}

TEST(Recorder, RangesNestAndRecordCallPaths) {
  Recorder r;
  r.enable(true);
  r.push_range(0.0, "step");
  r.push_range(1.0, "viscosity");
  r.pop_range(3.0);
  r.push_range(3.0, "conduction");
  r.pop_range(4.0);
  r.pop_range(5.0);
  ASSERT_EQ(r.events().size(), 3u);
  EXPECT_EQ(r.events()[0].name, "step/viscosity");
  EXPECT_EQ(r.events()[0].depth, 1);
  EXPECT_DOUBLE_EQ(r.events()[0].t0, 1.0);
  EXPECT_DOUBLE_EQ(r.events()[0].t1, 3.0);
  EXPECT_EQ(r.events()[1].name, "step/conduction");
  EXPECT_EQ(r.events()[1].depth, 1);
  EXPECT_EQ(r.events()[2].name, "step");
  EXPECT_EQ(r.events()[2].depth, 0);
  EXPECT_DOUBLE_EQ(r.events()[2].t1, 5.0);
  EXPECT_EQ(r.open_ranges(), 0);
}

TEST(Recorder, RangesIgnoreUnbalancedPopAndTornEnable) {
  Recorder r;
  r.enable(true);
  r.pop_range(1.0);  // unbalanced: ignored
  EXPECT_TRUE(r.events().empty());
  // A range pushed while disabled must not record on pop, even if tracing
  // was enabled in between (its t0 predates the capture window).
  r.enable(false);
  r.push_range(0.0, "warmup");
  r.enable(true);
  r.pop_range(2.0);
  EXPECT_TRUE(r.events().empty());
  // Zero-length ranges are dropped like zero-length events.
  r.push_range(3.0, "empty");
  r.pop_range(3.0);
  EXPECT_TRUE(r.events().empty());
}

TEST(Recorder, ClearEmptiesEvents) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 1.0, Lane::MpiWait, "w");
  r.clear();
  EXPECT_TRUE(r.events().empty());
}

}  // namespace
}  // namespace simas::trace
