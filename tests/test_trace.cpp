#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hpp"

namespace simas::trace {
namespace {

TEST(Recorder, DisabledByDefault) {
  Recorder r;
  r.record(0.0, 1.0, Lane::Kernel, "k");
  EXPECT_TRUE(r.events().empty());
}

TEST(Recorder, RecordsWhenEnabledAndDropsEmptyIntervals) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 1.0, Lane::Kernel, "k1");
  r.record(2.0, 2.0, Lane::Kernel, "zero-length");  // dropped
  r.record(3.0, 2.0, Lane::Kernel, "negative");     // dropped
  ASSERT_EQ(r.events().size(), 1u);
  EXPECT_EQ(r.events()[0].name, "k1");
}

TEST(Recorder, LaneBusyClipsToWindow) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 2.0, Lane::Kernel, "a");
  r.record(5.0, 6.0, Lane::Kernel, "b");
  r.record(0.5, 1.0, Lane::Migration, "m");
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Kernel, 1.0, 5.5), 1.5);  // 1-2 + 5-5.5
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Migration, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(r.lane_busy(Lane::Transfer, 0.0, 10.0), 0.0);
}

TEST(Recorder, AsciiRenderMarksBusyCells) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 0.5, Lane::Kernel, "k");
  std::ostringstream os;
  r.render_ascii(os, 0.0, 1.0, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("kernels"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);  // first half busy
  EXPECT_NE(out.find("um-migration"), std::string::npos);
}

TEST(Recorder, CsvRoundTripFormat) {
  Recorder r;
  r.enable(true);
  r.record(0.25, 1.5, Lane::Transfer, "send->3");
  std::ostringstream os;
  r.write_csv(os);
  EXPECT_EQ(os.str(), "t0,t1,lane,name\n0.25,1.5,transfer,send->3\n");
}

TEST(Recorder, ClearEmptiesEvents) {
  Recorder r;
  r.enable(true);
  r.record(0.0, 1.0, Lane::MpiWait, "w");
  r.clear();
  EXPECT_TRUE(r.events().empty());
}

}  // namespace
}  // namespace simas::trace
