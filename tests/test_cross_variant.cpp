// The paper's validation requirement (Sec. V-A): "For all test runs, the
// solutions were validated against that of the original code to within
// solver tolerances." Every SIMAS code version runs the same numerics, so
// all seven versions must produce identical physics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mhd/solver.hpp"
#include "mpisim/comm.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

struct Solution {
  mhd::GlobalDiagnostics diag;
  real rho_probe = 0.0;
  real br_probe = 0.0;
  real dt_last = 0.0;
  double modeled_time = 0.0;  ///< slowest rank's ledger at the end
};

Solution run_version(variants::CodeVersion v, int nranks, int steps,
                     bool overlap_halo = false, int host_threads = 1,
                     double scale = 0.0) {
  Solution out;
  std::mutex m;
  mpisim::World world(nranks);
  world.run([&](int rank) {
    par::EngineConfig ecfg =
        variants::engine_config(v, gpusim::a100_40gb(), host_threads);
    ecfg.overlap_halo = overlap_halo;
    par::Engine engine(ecfg);
    if (scale > 0.0) engine.cost().set_scales(scale, scale);
    mpisim::Comm comm(world, rank, engine);
    mhd::SolverConfig cfg;
    cfg.grid.nr = 12;
    cfg.grid.nt = 8;
    cfg.grid.np = 12;
    mhd::MasSolver solver(engine, comm, cfg);
    solver.initialize();
    // Modeled stepping time only: setup (data regions, including the
    // overlap path's slot buffers) is a one-off outside the step loop.
    // Barrier-align the clocks first — otherwise per-rank init skew is
    // absorbed as MPI wait inside the measured window and pollutes the
    // comparison (the usual MPI_Barrier-before-MPI_Wtime idiom).
    comm.barrier();
    const double t0 = engine.ledger().now();
    mhd::StepStats stats{};
    for (int s = 0; s < steps; ++s) stats = solver.step();
    const double t = engine.ledger().now() - t0;
    const auto d = solver.diagnostics();
    std::lock_guard<std::mutex> lock(m);
    out.modeled_time = std::max(out.modeled_time, t);
    if (rank == 0) {
      out.diag = d;
      out.rho_probe = solver.state().rho(1, 2, 3);
      out.br_probe = solver.state().br(2, 3, 4);
      out.dt_last = stats.dt;
    }
  });
  return out;
}

TEST(CrossVariant, AllGpuVersionsBitwiseIdenticalPhysics) {
  const auto ref = run_version(variants::CodeVersion::A, 1, 3);
  for (const auto v : variants::gpu_versions()) {
    const auto got = run_version(v, 1, 3);
    // Identical numerics: the execution models differ only in modeled
    // time accounting, exactly like recompiling MAS with different flags.
    EXPECT_EQ(got.rho_probe, ref.rho_probe) << variants::version_tag(v);
    EXPECT_EQ(got.br_probe, ref.br_probe) << variants::version_tag(v);
    EXPECT_EQ(got.dt_last, ref.dt_last) << variants::version_tag(v);
    EXPECT_EQ(got.diag.kinetic_energy, ref.diag.kinetic_energy)
        << variants::version_tag(v);
  }
}

TEST(CrossVariant, CpuVersionMatchesGpuVersions) {
  const auto ref = run_version(variants::CodeVersion::A, 1, 2);
  const auto cpu = run_version(variants::CodeVersion::Cpu, 1, 2);
  EXPECT_EQ(cpu.rho_probe, ref.rho_probe);
  EXPECT_EQ(cpu.br_probe, ref.br_probe);
}

TEST(CrossVariant, DecomposedRunsAgreeAcrossVersions) {
  // Version x rank-count matrix: every combination produces the same
  // globally-reduced diagnostics within solver tolerance.
  const auto ref = run_version(variants::CodeVersion::A, 1, 2);
  for (const auto v :
       {variants::CodeVersion::AD, variants::CodeVersion::D2XU}) {
    for (const int nranks : {2, 4}) {
      const auto got = run_version(v, nranks, 2);
      EXPECT_NEAR(got.diag.kinetic_energy, ref.diag.kinetic_energy,
                  1e-5 * std::abs(ref.diag.kinetic_energy) + 1e-15)
          << variants::version_tag(v) << " nranks=" << nranks;
      EXPECT_NEAR(got.diag.total_mass, ref.diag.total_mass,
                  1e-8 * ref.diag.total_mass)
          << variants::version_tag(v) << " nranks=" << nranks;
      EXPECT_LT(got.diag.max_div_b, 1e-10);
    }
  }
}

TEST(CrossVariant, OverlapHaloPhysicsByteIdenticalAllVersions) {
  // The overlapped exchange reorders communication against independent
  // kernels but never changes what any cell reads: physics must match the
  // synchronous path bitwise for every code version.
  for (const auto v : variants::all_versions()) {
    const auto sync = run_version(v, 2, 3);
    const auto ovl = run_version(v, 2, 3, /*overlap_halo=*/true);
    EXPECT_EQ(ovl.rho_probe, sync.rho_probe) << variants::version_tag(v);
    EXPECT_EQ(ovl.br_probe, sync.br_probe) << variants::version_tag(v);
    EXPECT_EQ(ovl.dt_last, sync.dt_last) << variants::version_tag(v);
    EXPECT_EQ(ovl.diag.kinetic_energy, sync.diag.kinetic_energy)
        << variants::version_tag(v);
    EXPECT_EQ(ovl.diag.magnetic_energy, sync.diag.magnetic_energy)
        << variants::version_tag(v);
    EXPECT_EQ(ovl.diag.total_mass, sync.diag.total_mass)
        << variants::version_tag(v);
  }
}

TEST(CrossVariant, OverlapHaloByteIdenticalAcrossHostThreads) {
  const auto ref = run_version(variants::CodeVersion::AD, 2, 3);
  for (const int threads : {1, 2, 8}) {
    const auto got =
        run_version(variants::CodeVersion::AD, 2, 3, /*overlap_halo=*/true,
                    threads);
    EXPECT_EQ(got.rho_probe, ref.rho_probe) << "threads=" << threads;
    EXPECT_EQ(got.br_probe, ref.br_probe) << "threads=" << threads;
    EXPECT_EQ(got.diag.kinetic_energy, ref.diag.kinetic_energy)
        << "threads=" << threads;
  }
}

TEST(CrossVariant, OverlapHaloNeverIncreasesModeledTime) {
  // Overlap moves transfers to the copy stream and (when profitable)
  // splits kernels, but must never cost modeled time. Scale 1.0 keeps
  // every split unprofitable (window-only overlap); scale 400 makes the
  // transfers large enough that the interior/boundary split activates for
  // the manual-memory versions.
  for (const auto v : variants::gpu_versions()) {
    for (const double scale : {1.0, 400.0}) {
      for (const int nranks : {2, 4}) {
        const auto sync = run_version(v, nranks, 2, false, 1, scale);
        const auto ovl = run_version(v, nranks, 2, true, 1, scale);
        EXPECT_EQ(ovl.rho_probe, sync.rho_probe)
            << variants::version_tag(v) << " scale=" << scale
            << " nranks=" << nranks;
        EXPECT_LE(ovl.modeled_time, sync.modeled_time * (1.0 + 1e-12))
            << variants::version_tag(v) << " scale=" << scale
            << " nranks=" << nranks;
      }
    }
  }
}

TEST(CrossVariant, ModeledTimesDifferEvenThoughPhysicsMatches) {
  // Sanity that we are actually modeling different code versions: the UM
  // version must take more modeled time than the manual version for the
  // identical computation.
  double manual_time = 0.0, um_time = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const auto v =
        pass == 0 ? variants::CodeVersion::AD : variants::CodeVersion::ADU;
    mpisim::World world(1);
    world.run([&](int rank) {
      par::Engine engine(
          variants::engine_config(v, gpusim::a100_40gb(), 1));
      engine.cost().set_scales(1000.0, 100.0);
      mpisim::Comm comm(world, rank, engine);
      mhd::SolverConfig cfg;
      cfg.grid.nr = 12;
      cfg.grid.nt = 8;
      cfg.grid.np = 12;
      mhd::MasSolver solver(engine, comm, cfg);
      solver.initialize();
      solver.run(2);
      (pass == 0 ? manual_time : um_time) = engine.ledger().now();
    });
  }
  EXPECT_GT(um_time, manual_time * 1.05);
}

}  // namespace
}  // namespace simas
