#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "par/engine.hpp"
#include "par/site_registry.hpp"
#include "par/thread_pool.hpp"

namespace simas::par {
namespace {

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
  for (int nthreads : {1, 2, 4}) {
    ThreadPool pool(nthreads);
    std::vector<std::atomic<int>> hits(257);
    pool.run_blocks(257, [&](i64 b) { hits[static_cast<std::size_t>(b)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, BackToBackJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<i64> sum{0};
    pool.run_blocks(64, [&](i64 b) { sum += b; });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, ZeroAndOneBlocks) {
  ThreadPool pool(3);
  int calls = 0;
  pool.run_blocks(0, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.run_blocks(1, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(SiteRegistry, DeduplicatesByName) {
  const auto& a = SIMAS_SITE("test_site_dedupe", SiteKind::ParallelLoop, 1);
  const auto& b = SIMAS_SITE("test_site_dedupe", SiteKind::ParallelLoop, 1);
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.id, 0);
}

TEST(SiteRegistry, ReferencesStableAcrossGrowth) {
  const auto& first = SIMAS_SITE("test_site_stable", SiteKind::ParallelLoop, 0);
  const std::string name_before = first.name;
  for (int i = 0; i < 200; ++i) {
    SiteRegistry::instance().register_site(make_site(
        "test_site_growth_" + std::to_string(i), SiteKind::ParallelLoop));
  }
  EXPECT_EQ(first.name, name_before);  // deque storage: no invalidation
}

EngineConfig gpu_config(LoopModel loops, gpusim::MemoryMode mem) {
  EngineConfig cfg;
  cfg.loops = loops;
  cfg.memory = mem;
  cfg.gpu = true;
  cfg.host_threads = 2;
  return cfg;
}

TEST(Engine, ForEachCoversRange) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_cover", SiteKind::ParallelLoop, 0);
  std::set<std::tuple<idx, idx, idx>> seen;
  std::mutex m;
  eng.for_each(site, Range3{1, 4, 0, 3, 2, 5}, {out(id)},
               [&](idx i, idx j, idx k) {
                 std::lock_guard<std::mutex> lock(m);
                 seen.insert({i, j, k});
               });
  EXPECT_EQ(seen.size(), 3u * 3u * 3u);
  EXPECT_TRUE(seen.count({1, 0, 2}));
  EXPECT_TRUE(seen.count({3, 2, 4}));
}

TEST(Engine, ReduceSumMatchesSerialAndThreadCountInvariant) {
  real sums[3];
  int t = 0;
  for (int nthreads : {1, 2, 4}) {
    EngineConfig cfg = gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual);
    cfg.host_threads = nthreads;
    Engine eng(cfg);
    const auto id = eng.memory().register_array("a", 1 << 20);
    static const KernelSite& site =
        SIMAS_SITE("test_engine_reduce", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
    sums[t++] = eng.reduce_sum(site, Range3{0, 13, 0, 17, 0, 11}, {in(id)},
                               [&](idx i, idx j, idx k) {
                                 return 0.1 * i + 0.01 * j + 0.001 * k;
                               });
  }
  // Deterministic blocked reduction: bitwise identical across thread counts.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
  // And equal to the serial loop in the same block order.
  real serial = 0.0;
  for (i64 p = 0; p < 13 * 17 * 11; ++p) {
    // block order matches plane-major order of the engine
  }
  (void)serial;
}

TEST(Engine, ReduceMaxFindsMaximum) {
  Engine eng(gpu_config(LoopModel::Dc2x, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_reduce_max", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const real m = eng.reduce_max(site, Range3{0, 10, 0, 10, 0, 10}, {in(id)},
                                [&](idx i, idx j, idx k) {
                                  return static_cast<real>(i * 100 + j * 10 +
                                                           k) -
                                         500.0;
                                });
  EXPECT_DOUBLE_EQ(m, 999.0 - 500.0);
}

TEST(Engine, ArrayReduceAccumulatesPerOuterIndex) {
  Engine eng(gpu_config(LoopModel::Dc2x, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_array_reduce", SiteKind::ArrayReduction, 0, false,
                 false, /*async_capable=*/false);
  std::vector<real> out(4, 1.0);  // accumulates on top of existing values
  eng.array_reduce(site, Range3{0, 4, 0, 5, 0, 6}, {in(id)},
                   std::span<real>(out),
                   [&](idx i, idx, idx) { return static_cast<real>(i); });
  for (idx i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     1.0 + static_cast<real>(i) * 30.0);
}

TEST(Engine, AccFusesConsecutiveSameGroupKernels) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_fuse_1", SiteKind::ParallelLoop, 77);
  static const KernelSite& s2 =
      SIMAS_SITE("test_fuse_2", SiteKind::ParallelLoop, 77);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 1);
  EXPECT_EQ(eng.counters().fused_launches, 1);
  EXPECT_EQ(eng.counters().loops_executed, 2);
}

TEST(Engine, DcNeverFuses) {
  Engine eng(gpu_config(LoopModel::Dc2018, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_nofuse_1", SiteKind::ParallelLoop, 78);
  static const KernelSite& s2 =
      SIMAS_SITE("test_nofuse_2", SiteKind::ParallelLoop, 78);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 2);
  EXPECT_EQ(eng.counters().fused_launches, 0);
}

TEST(Engine, FusionBreaksAcrossBarriers) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_fusebreak_1", SiteKind::ParallelLoop, 79);
  static const KernelSite& s2 =
      SIMAS_SITE("test_fusebreak_2", SiteKind::ParallelLoop, 79);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.break_fusion();
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 2);
}

TEST(Engine, DcLoopsSlowerThanAccOnGpu) {
  // Fission + no async + offload-parameter penalty: same loop sequence
  // must cost more modeled time under DC (paper Sec. IV-B / V-C).
  double modeled[2];
  int t = 0;
  for (const LoopModel lm : {LoopModel::Acc, LoopModel::Dc2018}) {
    Engine eng(gpu_config(lm, gpusim::MemoryMode::Manual));
    const auto id = eng.memory().register_array("a", 1 << 24);
    static const KernelSite& s1 =
        SIMAS_SITE("test_speed_1", SiteKind::ParallelLoop, 80);
    static const KernelSite& s2 =
        SIMAS_SITE("test_speed_2", SiteKind::ParallelLoop, 80);
    const Range3 r{0, 16, 0, 16, 0, 16};
    for (int rep = 0; rep < 10; ++rep) {
      eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
      eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
    }
    modeled[t++] = eng.ledger().now();
  }
  EXPECT_GT(modeled[1], modeled[0]);
}

TEST(Engine, CategoryScopeRoutesKernelTimeToMpi) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 24);
  static const KernelSite& site =
      SIMAS_SITE("test_category", SiteKind::ParallelLoop, 0);
  {
    Engine::CategoryScope scope(eng, gpusim::TimeCategory::Mpi);
    eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                 [](idx, idx, idx) {});
  }
  EXPECT_GT(eng.ledger().mpi_time(), 0.0);
  eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
               [](idx, idx, idx) {});
  EXPECT_GT(eng.ledger().total(gpusim::TimeCategory::Compute), 0.0);
}

TEST(Engine, UnifiedMemorySlowerThanManual) {
  double modeled[2];
  int t = 0;
  for (const auto mem :
       {gpusim::MemoryMode::Manual, gpusim::MemoryMode::Unified}) {
    Engine eng(gpu_config(LoopModel::Dc2018, mem));
    const auto id = eng.memory().register_array("a", 1 << 24);
    eng.memory().enter_data(id);
    static const KernelSite& site =
        SIMAS_SITE("test_um_speed", SiteKind::ParallelLoop, 0);
    // Skip first-touch migration before timing.
    eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                 [](idx, idx, idx) {});
    const double mark = eng.ledger().now();
    for (int rep = 0; rep < 10; ++rep)
      eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                   [](idx, idx, idx) {});
    modeled[t++] = eng.ledger().now() - mark;
  }
  EXPECT_GT(modeled[1], modeled[0]);
}

}  // namespace
}  // namespace simas::par
