#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <stdexcept>
#include <vector>

#include "par/engine.hpp"
#include "par/site_table.hpp"
#include "par/thread_pool.hpp"

// Counting global allocator for this test binary: the steady-state kernel
// launch path (pool dispatch, IR recording, reductions) must not
// heap-allocate per launch. Replacing the unsized scalar forms is enough —
// the default array and sized forms forward to them; over-aligned
// allocations bypass the counter (none occur on the paths under test).
//
// GCC inlines the replaced operator new down to malloc and then flags the
// std::free in the matching operator delete as a mismatch; the pair is in
// fact consistent, so silence the false positive for this TU.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace simas::par {
namespace {

TEST(ThreadPool, RunsEveryBlockExactlyOnce) {
  for (int nthreads : {1, 2, 4}) {
    ThreadPool pool(nthreads);
    std::vector<std::atomic<int>> hits(257);
    pool.run_blocks(257, [&](i64 b) { hits[static_cast<std::size_t>(b)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, BackToBackJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<i64> sum{0};
    pool.run_blocks(64, [&](i64 b) { sum += b; });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, ZeroAndOneBlocks) {
  ThreadPool pool(3);
  int calls = 0;
  pool.run_blocks(0, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.run_blocks(1, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ManyMoreBlocksThanThreads) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.run_blocks(10000, [&](i64 b) {
    hits[static_cast<std::size_t>(b)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, FewerBlocksThanThreads) {
  // Most workers find the cursor already exhausted and must park cleanly
  // without touching the job.
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<i64> sum{0};
    pool.run_blocks(3, [&](i64 b) { sum += b + 1; });
    ASSERT_EQ(sum.load(), 6);
  }
}

TEST(ThreadPool, RapidBackToBackJobsStress) {
  // Hammers the job-boundary handoff: generation fencing, the claimers
  // teardown fence, and the caller-sleep protocol under immediate reuse.
  ThreadPool pool(4);
  std::atomic<i64> total{0};
  i64 expected = 0;
  for (int round = 0; round < 1000; ++round) {
    const i64 nblocks = 2 + (round % 63);
    expected += nblocks;
    pool.run_blocks(nblocks,
                    [&](i64) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolRemainsUsable) {
  // A throwing block must not deadlock the join (the block still counts
  // as done), and the pool must be fully reusable afterwards.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(pool.run_blocks(32,
                                 [&](i64 b) {
                                   if (b == 7)
                                     throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
    std::atomic<i64> sum{0};
    pool.run_blocks(32, [&](i64 b) { sum += b; });
    ASSERT_EQ(sum.load(), 32 * 31 / 2);
  }
}

TEST(ThreadPool, ExceptionOnInlinePathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.run_blocks(4,
                               [](i64 b) {
                                 if (b == 2) throw std::runtime_error("x");
                               }),
               std::runtime_error);
}

TEST(SiteTable, DeduplicatesByName) {
  const auto& a = SIMAS_SITE("test_site_dedupe", SiteKind::ParallelLoop, 1);
  const auto& b = SIMAS_SITE("test_site_dedupe", SiteKind::ParallelLoop, 1);
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.id, 0);
}

TEST(SiteTable, ReferencesStableAcrossGrowth) {
  const auto& first = SIMAS_SITE("test_site_stable", SiteKind::ParallelLoop, 0);
  const std::string name_before = first.name;
  for (int i = 0; i < 200; ++i) {
    SiteTable::process().intern(make_site(
        "test_site_growth_" + std::to_string(i), SiteKind::ParallelLoop));
  }
  EXPECT_EQ(first.name, name_before);  // chunked storage: no invalidation
}

EngineConfig gpu_config(LoopModel loops, gpusim::MemoryMode mem) {
  EngineConfig cfg;
  cfg.loops = loops;
  cfg.memory = mem;
  cfg.gpu = true;
  cfg.host_threads = 2;
  return cfg;
}

TEST(Engine, ForEachCoversRange) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_cover", SiteKind::ParallelLoop, 0);
  std::set<std::tuple<idx, idx, idx>> seen;
  std::mutex m;
  eng.for_each(site, Range3{1, 4, 0, 3, 2, 5}, {out(id)},
               [&](idx i, idx j, idx k) {
                 std::lock_guard<std::mutex> lock(m);
                 seen.insert({i, j, k});
               });
  EXPECT_EQ(seen.size(), 3u * 3u * 3u);
  EXPECT_TRUE(seen.count({1, 0, 2}));
  EXPECT_TRUE(seen.count({3, 2, 4}));
}

TEST(Engine, ReduceSumMatchesSerialAndThreadCountInvariant) {
  real sums[3];
  int t = 0;
  for (int nthreads : {1, 2, 4}) {
    EngineConfig cfg = gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual);
    cfg.host_threads = nthreads;
    Engine eng(cfg);
    const auto id = eng.memory().register_array("a", 1 << 20);
    static const KernelSite& site =
        SIMAS_SITE("test_engine_reduce", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
    sums[t++] = eng.reduce_sum(site, Range3{0, 13, 0, 17, 0, 11}, {in(id)},
                               [&](idx i, idx j, idx k) {
                                 return 0.1 * i + 0.01 * j + 0.001 * k;
                               });
  }
  // Deterministic blocked reduction: bitwise identical across thread counts.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
  // And equal to the serial loop in the same block order.
  real serial = 0.0;
  for (i64 p = 0; p < 13 * 17 * 11; ++p) {
    // block order matches plane-major order of the engine
  }
  (void)serial;
}

TEST(Engine, ReduceMaxFindsMaximum) {
  Engine eng(gpu_config(LoopModel::Dc2x, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_reduce_max", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const real m = eng.reduce_max(site, Range3{0, 10, 0, 10, 0, 10}, {in(id)},
                                [&](idx i, idx j, idx k) {
                                  return static_cast<real>(i * 100 + j * 10 +
                                                           k) -
                                         500.0;
                                });
  EXPECT_DOUBLE_EQ(m, 999.0 - 500.0);
}

TEST(Engine, ArrayReduceAccumulatesPerOuterIndex) {
  Engine eng(gpu_config(LoopModel::Dc2x, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& site =
      SIMAS_SITE("test_engine_array_reduce", SiteKind::ArrayReduction, 0, false,
                 false, /*async_capable=*/false);
  std::vector<real> out(4, 1.0);  // accumulates on top of existing values
  eng.array_reduce(site, Range3{0, 4, 0, 5, 0, 6}, {in(id)},
                   std::span<real>(out),
                   [&](idx i, idx, idx) { return static_cast<real>(i); });
  for (idx i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)],
                     1.0 + static_cast<real>(i) * 30.0);
}

TEST(Engine, AccFusesConsecutiveSameGroupKernels) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_fuse_1", SiteKind::ParallelLoop, 77);
  static const KernelSite& s2 =
      SIMAS_SITE("test_fuse_2", SiteKind::ParallelLoop, 77);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 1);
  EXPECT_EQ(eng.counters().fused_launches, 1);
  EXPECT_EQ(eng.counters().loops_executed, 2);
}

TEST(Engine, DcNeverFuses) {
  Engine eng(gpu_config(LoopModel::Dc2018, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_nofuse_1", SiteKind::ParallelLoop, 78);
  static const KernelSite& s2 =
      SIMAS_SITE("test_nofuse_2", SiteKind::ParallelLoop, 78);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 2);
  EXPECT_EQ(eng.counters().fused_launches, 0);
}

TEST(Engine, FusionBreaksAcrossBarriers) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 =
      SIMAS_SITE("test_fusebreak_1", SiteKind::ParallelLoop, 79);
  static const KernelSite& s2 =
      SIMAS_SITE("test_fusebreak_2", SiteKind::ParallelLoop, 79);
  const Range3 r{0, 4, 0, 4, 0, 4};
  eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  eng.break_fusion();
  eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
  EXPECT_EQ(eng.counters().kernel_launches, 2);
}

TEST(Engine, DcLoopsSlowerThanAccOnGpu) {
  // Fission + no async + offload-parameter penalty: same loop sequence
  // must cost more modeled time under DC (paper Sec. IV-B / V-C).
  double modeled[2];
  int t = 0;
  for (const LoopModel lm : {LoopModel::Acc, LoopModel::Dc2018}) {
    Engine eng(gpu_config(lm, gpusim::MemoryMode::Manual));
    const auto id = eng.memory().register_array("a", 1 << 24);
    static const KernelSite& s1 =
        SIMAS_SITE("test_speed_1", SiteKind::ParallelLoop, 80);
    static const KernelSite& s2 =
        SIMAS_SITE("test_speed_2", SiteKind::ParallelLoop, 80);
    const Range3 r{0, 16, 0, 16, 0, 16};
    for (int rep = 0; rep < 10; ++rep) {
      eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
      eng.for_each(s2, r, {out(id)}, [](idx, idx, idx) {});
    }
    modeled[t++] = eng.ledger().now();
  }
  EXPECT_GT(modeled[1], modeled[0]);
}

TEST(Engine, CategoryScopeRoutesKernelTimeToMpi) {
  Engine eng(gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual));
  const auto id = eng.memory().register_array("a", 1 << 24);
  static const KernelSite& site =
      SIMAS_SITE("test_category", SiteKind::ParallelLoop, 0);
  {
    Engine::CategoryScope scope(eng, gpusim::TimeCategory::Mpi);
    eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                 [](idx, idx, idx) {});
  }
  EXPECT_GT(eng.ledger().mpi_time(), 0.0);
  eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
               [](idx, idx, idx) {});
  EXPECT_GT(eng.ledger().total(gpusim::TimeCategory::Compute), 0.0);
}

TEST(Engine, UnifiedMemorySlowerThanManual) {
  double modeled[2];
  int t = 0;
  for (const auto mem :
       {gpusim::MemoryMode::Manual, gpusim::MemoryMode::Unified}) {
    Engine eng(gpu_config(LoopModel::Dc2018, mem));
    const auto id = eng.memory().register_array("a", 1 << 24);
    eng.memory().enter_data(id);
    static const KernelSite& site =
        SIMAS_SITE("test_um_speed", SiteKind::ParallelLoop, 0);
    // Skip first-touch migration before timing.
    eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                 [](idx, idx, idx) {});
    const double mark = eng.ledger().now();
    for (int rep = 0; rep < 10; ++rep)
      eng.for_each(site, Range3{0, 16, 0, 16, 0, 16}, {out(id)},
                   [](idx, idx, idx) {});
    modeled[t++] = eng.ledger().now() - mark;
  }
  EXPECT_GT(modeled[1], modeled[0]);
}

TEST(Engine, SteadyStateLaunchPathIsAllocationFree) {
  EngineConfig cfg = gpu_config(LoopModel::Acc, gpusim::MemoryMode::Manual);
  cfg.host_threads = 4;
  Engine eng(cfg);
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& loop_site =
      SIMAS_SITE("alloc_free_loop", SiteKind::ParallelLoop, 0);
  static const KernelSite& red_site =
      SIMAS_SITE("alloc_free_reduce", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  static const KernelSite& ar_site =
      SIMAS_SITE("alloc_free_array_reduce", SiteKind::ArrayReduction, 0,
                 false, false, /*async_capable=*/false);
  // 8192 cells: above the inline cutoff, so the pool dispatch path runs.
  const Range3 r{0, 32, 0, 16, 0, 16};
  std::vector<real> acc(8, 0.0);
  real sink = 0.0;
  const auto step = [&] {
    eng.for_each(loop_site, r, {out(id)}, [](idx, idx, idx) {});
    sink += eng.reduce_sum(red_site, r, {in(id)}, [](idx i, idx j, idx k) {
      return 1e-3 * static_cast<real>(i + j + k);
    });
    eng.array_reduce(ar_site, Range3{0, 8, 0, 16, 0, 16}, {in(id)},
                     std::span<real>(acc),
                     [](idx i, idx, idx) { return static_cast<real>(i); });
  };
  // Warm-up lets one-time scratch (reduction partials) reach capacity.
  for (int warm = 0; warm < 3; ++warm) step();
  const long before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int it = 0; it < 10; ++it) step();
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed), before)
      << "kernel launch / reduction steady state must not heap-allocate";
  (void)sink;
}

}  // namespace
}  // namespace simas::par
