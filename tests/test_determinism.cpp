// Cross-model and cross-thread determinism: SIMAS's claim that every code
// version computes bitwise-identical physics rests on the engine's
// deterministic execution, independent of loop model, memory mode, and
// host thread count. These sweeps pin that contract down.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "par/engine.hpp"
#include "par/site_table.hpp"

namespace simas::par {
namespace {

using Combo = std::tuple<LoopModel, gpusim::MemoryMode, int>;

class DeterminismSweep : public ::testing::TestWithParam<Combo> {};

Engine make_engine(const Combo& combo) {
  EngineConfig cfg;
  cfg.loops = std::get<0>(combo);
  cfg.memory = std::get<1>(combo);
  cfg.gpu = true;
  cfg.host_threads = std::get<2>(combo);
  return Engine(cfg);
}

TEST_P(DeterminismSweep, ReduceSumBitwiseStable) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_reduce", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const auto term = [](idx i, idx j, idx k) {
    return 1.0 / (1.0 + i) + 0.001 * j - 1e-7 * k;
  };
  const real v = eng.reduce_sum(site, Range3{0, 21, 0, 17, 0, 13},
                                {in(id)}, term);
  // Reference: serial engine, ACC, manual memory.
  Engine ref_eng = make_engine({LoopModel::Acc, gpusim::MemoryMode::Manual,
                                1});
  const auto ref_id = ref_eng.memory().register_array("a", 1 << 22);
  const real ref = ref_eng.reduce_sum(site, Range3{0, 21, 0, 17, 0, 13},
                                      {in(ref_id)}, term);
  EXPECT_EQ(v, ref);  // bitwise, not approximate
}

TEST_P(DeterminismSweep, ArrayReduceBitwiseStable) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_array_reduce", SiteKind::ArrayReduction, 0, false,
                 false, /*async_capable=*/false);
  const auto term = [](idx i, idx j, idx k) {
    return 0.1 * i + 1.0 / (2.0 + j + k);
  };
  std::vector<real> out_vec(9, 0.0);
  eng.array_reduce(site, Range3{0, 9, 0, 11, 0, 7}, {in(id)},
                   std::span<real>(out_vec), term);

  Engine ref_eng = make_engine({LoopModel::Acc, gpusim::MemoryMode::Manual,
                                1});
  const auto ref_id = ref_eng.memory().register_array("a", 1 << 22);
  std::vector<real> ref_vec(9, 0.0);
  ref_eng.array_reduce(site, Range3{0, 9, 0, 11, 0, 7}, {in(ref_id)},
                       std::span<real>(ref_vec), term);
  for (std::size_t i = 0; i < out_vec.size(); ++i)
    EXPECT_EQ(out_vec[i], ref_vec[i]);
}

TEST_P(DeterminismSweep, ForEachWritesEveryCellOnce) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_foreach", SiteKind::ParallelLoop, 0);
  std::vector<int> hits(10 * 10 * 10, 0);
  std::mutex m;
  eng.for_each(site, Range3{0, 10, 0, 10, 0, 10}, {out(id)},
               [&](idx i, idx j, idx k) {
                 std::lock_guard<std::mutex> lock(m);
                 hits[static_cast<std::size_t>(i * 100 + j * 10 + k)]++;
               });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Models, DeterminismSweep,
    ::testing::Combine(
        ::testing::Values(LoopModel::Acc, LoopModel::Dc2018,
                          LoopModel::Dc2x),
        ::testing::Values(gpusim::MemoryMode::Manual,
                          gpusim::MemoryMode::Unified),
        ::testing::Values(1, 3, 8)));

// ---------------------------------------------------------------------
// Adaptive-grain coverage. The plain-loop block grain adapts to the
// problem *shape* (engine.hpp plane_grain / chunk_grain); these sweeps pin
// that the adaptation never leaks into results: every cell written exactly
// once with bitwise-identical values across host thread counts, including
// thin plane counts, ghost-zone (negative-start) ranges, and 1-D loops.

constexpr real kUnwritten = -1.0e300;

Engine threads_engine(int nthreads) {
  EngineConfig cfg;
  cfg.loops = LoopModel::Acc;
  cfg.memory = gpusim::MemoryMode::Manual;
  cfg.gpu = true;
  cfg.host_threads = nthreads;
  return Engine(cfg);
}

std::vector<real> run_foreach3(int nthreads, Range3 r) {
  Engine eng = threads_engine(nthreads);
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_adaptive_foreach", SiteKind::ParallelLoop, 0);
  const idx ni = r.i1 - r.i0, nj = r.j1 - r.j0;
  std::vector<real> cells(static_cast<std::size_t>(r.count()), kUnwritten);
  eng.for_each(site, r, {out(id)}, [&](idx i, idx j, idx k) {
    const auto slot = static_cast<std::size_t>(
        (i - r.i0) + ni * ((j - r.j0) + nj * (k - r.k0)));
    // Each cell is written once; a prior write would be a grain bug.
    cells[slot] = (cells[slot] == kUnwritten)
                      ? 0.5 * i + 1.0 / (2.0 + j) - 1e-5 * k
                      : kUnwritten;
  });
  return cells;
}

void expect_foreach3_stable(Range3 r) {
  const std::vector<real> ref = run_foreach3(1, r);
  for (const real v : ref) ASSERT_NE(v, kUnwritten);
  for (const int nthreads : {2, 8}) {
    const std::vector<real> got = run_foreach3(nthreads, r);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t s = 0; s < ref.size(); ++s)
      ASSERT_EQ(got[s], ref[s]) << "cell " << s << " at " << nthreads
                                << " threads";  // bitwise
  }
}

TEST(AdaptiveGrain, ForEachThinPlaneCountBitwiseStable) {
  // 4 (j,k) planes over a long i extent: the shape-derived grain splits
  // planes finely instead of collapsing to one block.
  expect_foreach3_stable(Range3{0, 1200, 0, 2, 0, 2});
}

TEST(AdaptiveGrain, ForEachGhostOffsetRangeBitwiseStable) {
  // Negative starts, as used for ghost-zone sweeps.
  expect_foreach3_stable(Range3{-2, 30, -2, 14, -2, 14});
}

TEST(AdaptiveGrain, ForEach1GhostOffsetBitwiseStable) {
  const Range1 r{-3, 9000};
  std::vector<real> ref;
  for (const int nthreads : {1, 2, 8}) {
    Engine eng = threads_engine(nthreads);
    const auto id = eng.memory().register_array("a", 1 << 22);
    static const KernelSite& site =
        SIMAS_SITE("det_adaptive_foreach1", SiteKind::ParallelLoop, 0);
    std::vector<real> cells(static_cast<std::size_t>(r.count()), kUnwritten);
    eng.for_each1(site, r, {out(id)}, [&](idx i) {
      cells[static_cast<std::size_t>(i - r.begin)] =
          1.0 / (4.0 + i) + 1e-3 * i;
    });
    for (const real v : cells) ASSERT_NE(v, kUnwritten);
    if (ref.empty()) {
      ref = cells;
    } else {
      for (std::size_t s = 0; s < ref.size(); ++s)
        ASSERT_EQ(cells[s], ref[s]) << "slot " << s << " at " << nthreads
                                    << " threads";
    }
  }
}

TEST(AdaptiveGrain, ArrayReduceGhostOffsetBitwiseStable) {
  // Pool-path sized (7168 cells) with a negative-start (j,k) plane; the
  // per-output-element partitioning is pinned, so sums stay bitwise equal.
  const Range3 r{0, 7, -4, 28, 0, 32};
  std::vector<real> ref;
  for (const int nthreads : {1, 2, 8}) {
    Engine eng = threads_engine(nthreads);
    const auto id = eng.memory().register_array("a", 1 << 22);
    static const KernelSite& site =
        SIMAS_SITE("det_adaptive_array_reduce", SiteKind::ArrayReduction, 0,
                   false, false, /*async_capable=*/false);
    std::vector<real> acc(7, 0.25);
    eng.array_reduce(site, r, {in(id)}, std::span<real>(acc),
                     [](idx i, idx j, idx k) {
                       return 0.01 * i + 1.0 / (3.0 + j) - 1e-6 * k;
                     });
    if (ref.empty()) {
      ref = acc;
    } else {
      for (std::size_t s = 0; s < ref.size(); ++s)
        ASSERT_EQ(acc[s], ref[s]) << "element " << s << " at " << nthreads
                                  << " threads";
    }
  }
}

}  // namespace
}  // namespace simas::par
