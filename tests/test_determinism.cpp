// Cross-model and cross-thread determinism: SIMAS's claim that every code
// version computes bitwise-identical physics rests on the engine's
// deterministic execution, independent of loop model, memory mode, and
// host thread count. These sweeps pin that contract down.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "par/engine.hpp"
#include "par/site_registry.hpp"

namespace simas::par {
namespace {

using Combo = std::tuple<LoopModel, gpusim::MemoryMode, int>;

class DeterminismSweep : public ::testing::TestWithParam<Combo> {};

Engine make_engine(const Combo& combo) {
  EngineConfig cfg;
  cfg.loops = std::get<0>(combo);
  cfg.memory = std::get<1>(combo);
  cfg.gpu = true;
  cfg.host_threads = std::get<2>(combo);
  return Engine(cfg);
}

TEST_P(DeterminismSweep, ReduceSumBitwiseStable) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_reduce", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const auto term = [](idx i, idx j, idx k) {
    return 1.0 / (1.0 + i) + 0.001 * j - 1e-7 * k;
  };
  const real v = eng.reduce_sum(site, Range3{0, 21, 0, 17, 0, 13},
                                {in(id)}, term);
  // Reference: serial engine, ACC, manual memory.
  Engine ref_eng = make_engine({LoopModel::Acc, gpusim::MemoryMode::Manual,
                                1});
  const auto ref_id = ref_eng.memory().register_array("a", 1 << 22);
  const real ref = ref_eng.reduce_sum(site, Range3{0, 21, 0, 17, 0, 13},
                                      {in(ref_id)}, term);
  EXPECT_EQ(v, ref);  // bitwise, not approximate
}

TEST_P(DeterminismSweep, ArrayReduceBitwiseStable) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_array_reduce", SiteKind::ArrayReduction, 0, false,
                 false, /*async_capable=*/false);
  const auto term = [](idx i, idx j, idx k) {
    return 0.1 * i + 1.0 / (2.0 + j + k);
  };
  std::vector<real> out_vec(9, 0.0);
  eng.array_reduce(site, Range3{0, 9, 0, 11, 0, 7}, {in(id)},
                   std::span<real>(out_vec), term);

  Engine ref_eng = make_engine({LoopModel::Acc, gpusim::MemoryMode::Manual,
                                1});
  const auto ref_id = ref_eng.memory().register_array("a", 1 << 22);
  std::vector<real> ref_vec(9, 0.0);
  ref_eng.array_reduce(site, Range3{0, 9, 0, 11, 0, 7}, {in(ref_id)},
                       std::span<real>(ref_vec), term);
  for (std::size_t i = 0; i < out_vec.size(); ++i)
    EXPECT_EQ(out_vec[i], ref_vec[i]);
}

TEST_P(DeterminismSweep, ForEachWritesEveryCellOnce) {
  Engine eng = make_engine(GetParam());
  const auto id = eng.memory().register_array("a", 1 << 22);
  static const KernelSite& site =
      SIMAS_SITE("det_foreach", SiteKind::ParallelLoop, 0);
  std::vector<int> hits(10 * 10 * 10, 0);
  std::mutex m;
  eng.for_each(site, Range3{0, 10, 0, 10, 0, 10}, {out(id)},
               [&](idx i, idx j, idx k) {
                 std::lock_guard<std::mutex> lock(m);
                 hits[static_cast<std::size_t>(i * 100 + j * 10 + k)]++;
               });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Models, DeterminismSweep,
    ::testing::Combine(
        ::testing::Values(LoopModel::Acc, LoopModel::Dc2018,
                          LoopModel::Dc2x),
        ::testing::Values(gpusim::MemoryMode::Manual,
                          gpusim::MemoryMode::Unified),
        ::testing::Values(1, 3, 8)));

}  // namespace
}  // namespace simas::par
