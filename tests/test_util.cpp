#include <gtest/gtest.h>

#include <sstream>

#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace simas {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
}

TEST(Types, Square) {
  EXPECT_DOUBLE_EQ(sq(3.0), 9.0);
  EXPECT_DOUBLE_EQ(sq(-2.5), 6.25);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(Table, AlignsColumnsAndPrintsHeader) {
  Table t("demo");
  t.set_header({"a", "long-header", "c"});
  t.row().cell(std::string("x")).cell(1.5, 1).cell(42);
  t.row().cell(std::string("yyyy")).cell(10.25, 2).cell(7);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t;
  t.set_header({"x", "y"});
  t.row().cell(1).cell(2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Options, ParsesKeyValueForms) {
  // A bare token after a --key is consumed as its value, so positionals
  // come first (documented parser behaviour).
  const char* argv[] = {"prog", "positional", "--nr", "32", "--np=64",
                        "--flag"};
  Options opt(6, argv);
  EXPECT_EQ(opt.get_int("nr", 0), 32);
  EXPECT_EQ(opt.get_int("np", 0), 64);
  EXPECT_TRUE(opt.get_bool("flag", false));  // trailing bare flag -> true
  EXPECT_FALSE(opt.get_bool("missing", false));
  EXPECT_EQ(opt.get("missing", "def"), "def");
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "positional");
}

TEST(Options, DoubleAndBoolParsing) {
  const char* argv[] = {"prog", "--x", "2.5", "--b", "true", "--c=off"};
  Options opt(6, argv);
  EXPECT_DOUBLE_EQ(opt.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(opt.get_bool("b", false));
  EXPECT_FALSE(opt.get_bool("c", true));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(StopWatch, AccumulatesIntervals) {
  StopWatch w;
  EXPECT_FALSE(w.running());
  w.start();
  EXPECT_TRUE(w.running());
  w.stop();
  const double t1 = w.seconds();
  EXPECT_GE(t1, 0.0);
  w.start();
  w.stop();
  EXPECT_GE(w.seconds(), t1);
}

}  // namespace
}  // namespace simas
