// Shape assertions against the paper's evaluation: who wins, by roughly
// what factor, and where the mechanisms show up. These are the headline
// claims of Figs. 2-4 and Tables I-III, asserted with generous tolerances
// (the model is calibrated, not measured).

#include <gtest/gtest.h>

#include "bench_support/run_experiment.hpp"
#include "variants/code_version.hpp"

namespace simas {
namespace {

using bench_support::ExperimentConfig;
using bench_support::run_experiment;
using variants::CodeVersion;

ExperimentConfig cfg_for(CodeVersion v, int nranks,
                         gpusim::DeviceSpec dev = gpusim::a100_40gb()) {
  ExperimentConfig cfg;
  cfg.version = v;
  cfg.nranks = nranks;
  cfg.device = std::move(dev);
  cfg.grid = bench_support::bench_grid();
  return cfg;
}

class PaperShape : public ::testing::Test {
 protected:
  static double wall(CodeVersion v, int n) {
    return run_experiment(cfg_for(v, n)).wall_minutes;
  }
  static bench_support::ExperimentResult full(CodeVersion v, int n) {
    return run_experiment(cfg_for(v, n));
  }
};

TEST_F(PaperShape, Code1IsFastestOnGpus) {
  // Paper Sec. VI: "Code 1 (A, our original OpenACC code) is the best
  // performing version."
  for (const int n : {1, 8}) {
    const double a = wall(CodeVersion::A, n);
    for (const auto v : variants::gpu_versions()) {
      if (v == CodeVersion::A) continue;
      EXPECT_LE(a, wall(v, n) * 1.001)
          << variants::version_tag(v) << " @" << n;
    }
  }
}

TEST_F(PaperShape, DcWithManualMemoryNearOpenAcc) {
  // Paper: Code 2 (AD) within a few percent of Code 1 (206.9 vs 200.9 on
  // 1 GPU; 25.3 vs 23.0 on 8).
  const double ratio1 = wall(CodeVersion::AD, 1) / wall(CodeVersion::A, 1);
  EXPECT_GT(ratio1, 1.005);
  EXPECT_LT(ratio1, 1.10);
  const double ratio8 = wall(CodeVersion::AD, 8) / wall(CodeVersion::A, 8);
  EXPECT_GT(ratio8, 1.02);
  EXPECT_LT(ratio8, 1.25);
  // The penalty grows with rank count (launch overheads do not shrink).
  EXPECT_GT(ratio8, ratio1);
}

TEST_F(PaperShape, UnifiedMemorySlowdownBand) {
  // Paper abstract: zero-directive code is 1.25x-3x slower.
  for (const auto v :
       {CodeVersion::ADU, CodeVersion::AD2XU, CodeVersion::D2XU}) {
    const double r1 = wall(v, 1) / wall(CodeVersion::A, 1);
    EXPECT_GT(r1, 1.2) << variants::version_tag(v);
    EXPECT_LT(r1, 1.6) << variants::version_tag(v);
    const double r8 = wall(v, 8) / wall(CodeVersion::A, 8);
    EXPECT_GT(r8, 2.0) << variants::version_tag(v);
    EXPECT_LT(r8, 3.5) << variants::version_tag(v);
  }
}

TEST_F(PaperShape, UmCodesAllCloseTogether) {
  // Paper Sec. V-C: "All the codes that exhibit worse performance have
  // similar timings, and all use UM."
  const double adu = wall(CodeVersion::ADU, 8);
  const double ad2xu = wall(CodeVersion::AD2XU, 8);
  const double d2xu = wall(CodeVersion::D2XU, 8);
  EXPECT_NEAR(ad2xu / adu, 1.0, 0.12);
  EXPECT_NEAR(d2xu / adu, 1.0, 0.12);
}

TEST_F(PaperShape, UmBlowsUpMpiTimeNotJustCompute) {
  // Paper Fig. 3: "The MPI time is greatly increased in the codes that use
  // UM, and the non-MPI time is increased as well (but to a much smaller
  // degree)."
  const auto manual = full(CodeVersion::A, 8);
  const auto um = full(CodeVersion::ADU, 8);
  EXPECT_GT(um.mpi_minutes, 8.0 * manual.mpi_minutes);
  const double nonmpi_ratio =
      um.non_mpi_minutes() / manual.non_mpi_minutes();
  EXPECT_GT(nonmpi_ratio, 1.1);
  EXPECT_LT(nonmpi_ratio, 2.2);
}

TEST_F(PaperShape, Code6RecoversPerformanceWithManualData) {
  // Paper: D2XAd ≈ AD ≈ A, slightly slower than AD due to the init
  // wrappers (213.0 vs 206.9 on 1 GPU).
  const double d2xad = wall(CodeVersion::D2XAd, 1);
  const double ad = wall(CodeVersion::AD, 1);
  const double adu = wall(CodeVersion::ADU, 1);
  EXPECT_GT(d2xad, ad);
  EXPECT_LT(d2xad, ad * 1.10);
  EXPECT_LT(d2xad, adu * 0.90);  // far better than the UM codes
}

TEST_F(PaperShape, ManualCodesScaleSuperLinearlyAtFirst) {
  // Paper Fig. 2: Codes 1, 2, 6 show 'super' scaling 1 -> 2 GPUs.
  for (const auto v :
       {CodeVersion::A, CodeVersion::AD, CodeVersion::D2XAd}) {
    const double t1 = wall(v, 1);
    const double t2 = wall(v, 2);
    EXPECT_LT(t2, t1 / 2.0 * 1.01) << variants::version_tag(v);
  }
}

TEST_F(PaperShape, EightGpuSpeedupNearIdealForCode1) {
  // Paper: 200.9 -> 23.0 is 8.7x on 8 GPUs (better than ideal).
  const double speedup = wall(CodeVersion::A, 1) / wall(CodeVersion::A, 8);
  EXPECT_GT(speedup, 7.0);
  EXPECT_LT(speedup, 10.0);
}

TEST_F(PaperShape, UmCodesScaleWorse) {
  const double s_manual =
      wall(CodeVersion::A, 1) / wall(CodeVersion::A, 8);
  const double s_um =
      wall(CodeVersion::ADU, 1) / wall(CodeVersion::ADU, 8);
  EXPECT_LT(s_um, s_manual);
}

TEST_F(PaperShape, CpuTableIII) {
  // DC == OpenACC on CPU nodes, to the reproducibility of the model.
  const auto dev = gpusim::epyc7742_node();
  const double a1 = run_experiment(cfg_for(CodeVersion::A, 1, dev)).wall_minutes;
  const double ad1 =
      run_experiment(cfg_for(CodeVersion::AD, 1, dev)).wall_minutes;
  EXPECT_DOUBLE_EQ(a1, ad1);
  // 8 nodes: strong scaling better than 8x (paper: 725.5/79.6 = 9.1x).
  const double a8 = run_experiment(cfg_for(CodeVersion::A, 8, dev)).wall_minutes;
  EXPECT_GT(a1 / a8, 7.5);
  EXPECT_LT(a1 / a8, 10.5);
  // CPU nodes are far slower than one A100 (memory-bound code,
  // 409.5 vs 1555 GB/s).
  EXPECT_GT(a1, 2.5 * wall(CodeVersion::A, 1));
}

TEST_F(PaperShape, Fig4UmPerIterationRatio) {
  // Paper Fig. 4: one UM viscosity-iteration block takes ~3x the manual
  // one on 8 GPUs.
  const auto manual = full(CodeVersion::A, 8);
  const auto um = full(CodeVersion::ADU, 8);
  const double ratio = um.ranks[0].seconds_per_step /
                       manual.ranks[0].seconds_per_step;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(PaperShape, TraceShowsMigrationLaneOnlyUnderUm) {
  auto cfg = cfg_for(CodeVersion::A, 8);
  cfg.capture_trace = true;
  const auto manual = run_experiment(cfg);
  auto cfg2 = cfg_for(CodeVersion::ADU, 8);
  cfg2.capture_trace = true;
  const auto um = run_experiment(cfg2);
  const double mig_manual = manual.trace.lane_busy(
      trace::Lane::Migration, manual.trace_t0, manual.trace_t1);
  const double mig_um =
      um.trace.lane_busy(trace::Lane::Migration, um.trace_t0, um.trace_t1);
  EXPECT_DOUBLE_EQ(mig_manual, 0.0);  // P2P path: no CPU-GPU migrations
  EXPECT_GT(mig_um, 0.0);
  const double p2p_manual = manual.trace.lane_busy(
      trace::Lane::Transfer, manual.trace_t0, manual.trace_t1);
  EXPECT_GT(p2p_manual, 0.0);  // manual path rides NVLink
}

}  // namespace
}  // namespace simas
