// Kernel-stream IR and graph capture/replay tests: op helpers, signature
// validation, CapturedGraph lifecycle, and the Engine's capture -> replay
// -> divergence -> re-capture state machine with its launch-overhead
// accounting (per-graph instead of per-kernel).

#include <gtest/gtest.h>

#include <string>

#include "par/engine.hpp"
#include "par/site_table.hpp"

namespace simas::par {
namespace {

EngineConfig graph_config(LoopModel loops = LoopModel::Dc2018,
                          gpusim::MemoryMode mem = gpusim::MemoryMode::Manual) {
  EngineConfig cfg;
  cfg.loops = loops;
  cfg.memory = mem;
  cfg.gpu = true;
  cfg.graph_replay = true;
  cfg.host_threads = 1;
  return cfg;
}

const KernelSite& stream_site(const char* name,
                              SiteKind kind = SiteKind::ParallelLoop) {
  return SiteTable::process().intern(make_site(name, kind));
}

TEST(StreamIr, OpKindHelpers) {
  const KernelSite& site = stream_site("stream_helpers");
  LaunchOp launch;
  launch.site = &site;
  launch.cells = 64;
  ReduceOp red;
  red.site = &site;
  red.cells = 8;

  const StreamOp ops[] = {StreamOp{launch}, StreamOp{red},
                          StreamOp{ArrayReduceOp{}}, StreamOp{SyncOp{}},
                          StreamOp{FusionBreakOp{}}};
  EXPECT_EQ(op_kind(ops[0]), OpKind::Launch);
  EXPECT_EQ(op_kind(ops[1]), OpKind::Reduce);
  EXPECT_EQ(op_kind(ops[2]), OpKind::ArrayReduce);
  EXPECT_EQ(op_kind(ops[3]), OpKind::Sync);
  EXPECT_EQ(op_kind(ops[4]), OpKind::FusionBreak);

  EXPECT_STREQ(op_kind_name(OpKind::Launch), "launch");
  EXPECT_STREQ(op_kind_name(OpKind::ArrayReduce), "array_reduce");
  EXPECT_STREQ(op_kind_name(OpKind::FusionBreak), "fusion_break");

  EXPECT_EQ(op_site(ops[0]), &site);
  EXPECT_EQ(op_cells(ops[0]), 64);
  EXPECT_EQ(op_site(ops[3]), nullptr);
  EXPECT_EQ(op_cells(ops[4]), 0);
}

TEST(StreamIr, SameSignatureChecksKindSiteAndCells) {
  const KernelSite& a = stream_site("stream_sig_a");
  const KernelSite& b = stream_site("stream_sig_b");
  LaunchOp la;
  la.site = &a;
  la.cells = 100;
  LaunchOp la2 = la;
  EXPECT_TRUE(same_signature(StreamOp{la}, StreamOp{la2}));

  LaunchOp other_site = la;
  other_site.site = &b;
  EXPECT_FALSE(same_signature(StreamOp{la}, StreamOp{other_site}));

  LaunchOp other_cells = la;
  other_cells.cells = 101;
  EXPECT_FALSE(same_signature(StreamOp{la}, StreamOp{other_cells}));

  ReduceOp red;
  red.site = &a;
  red.cells = 100;
  EXPECT_FALSE(same_signature(StreamOp{la}, StreamOp{red}));

  EXPECT_TRUE(same_signature(StreamOp{SyncOp{}}, StreamOp{SyncOp{}}));
  EXPECT_FALSE(same_signature(StreamOp{SyncOp{}}, StreamOp{FusionBreakOp{}}));
}

TEST(StreamIr, CapturedGraphLifecycle) {
  CapturedGraph g("pcg/iter");
  EXPECT_EQ(g.name(), "pcg/iter");
  EXPECT_FALSE(g.captured());
  EXPECT_EQ(g.size(), 0u);

  g.begin_capture();
  g.append(StreamOp{SyncOp{}});
  g.append(StreamOp{FusionBreakOp{}});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_FALSE(g.captured());  // not replayable until finalized
  g.finalize();
  EXPECT_TRUE(g.captured());

  g.invalidate();
  EXPECT_FALSE(g.captured());
  g.begin_capture();  // re-capture starts from an empty op list
  EXPECT_EQ(g.size(), 0u);
}

TEST(StreamIr, SiteInventoryComesFromRegistry) {
  stream_site("stream_inventory_probe");
  const auto sites = stream_sites();
  EXPECT_EQ(sites.size(), SiteTable::process().size());
  bool found = false;
  for (const auto& s : sites) found |= (s.name == "stream_inventory_probe");
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Engine graph capture/replay.

TEST(GraphReplay, SecondPassReplaysWithPerGraphLaunchOverhead) {
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_basic_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_basic_2", SiteKind::ParallelLoop);
  static const KernelSite& sr =
      SIMAS_SITE("graph_basic_red", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const Range3 r{0, 8, 0, 8, 0, 8};

  auto pass = [&] {
    Engine::GraphScope graph(eng, "basic");
    eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
    eng.for_each(s2, r, {in(id)}, [](idx, idx, idx) {});
    eng.reduce_sum(sr, r, {in(id)}, [](idx, idx, idx) { return 1.0; });
  };

  const auto gap = [&] {
    return eng.ledger().total(gpusim::TimeCategory::LaunchGap);
  };
  const double g0 = gap();
  pass();  // capture: per-kernel launch overhead
  const double capture_gap = gap() - g0;
  const EngineCounters after_capture = eng.counters();
  pass();  // replay: one per-graph launch
  const double replay_gap = gap() - g0 - capture_gap;

  const double overhead = eng.config().device.launch_overhead_s;
  // DC model, manual memory: 3 synchronous launches while capturing...
  EXPECT_DOUBLE_EQ(capture_gap, 3.0 * overhead);
  // ...but a single graph launch while replaying.
  EXPECT_DOUBLE_EQ(replay_gap, overhead);

  const GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.captures, 1);
  EXPECT_EQ(st.replays, 1);
  EXPECT_EQ(st.divergences, 0);
  EXPECT_EQ(st.replayed_ops, 3);
  EXPECT_DOUBLE_EQ(st.graph_launch_seconds, overhead);
  EXPECT_DOUBLE_EQ(st.kernel_launch_seconds_saved, 3.0 * overhead);

  // Replay changes launch accounting only: logical work counters advance
  // exactly as in the capture pass.
  EXPECT_EQ(eng.counters().loops_executed, 2 * after_capture.loops_executed);
  EXPECT_EQ(eng.counters().kernel_launches,
            2 * after_capture.kernel_launches);
  EXPECT_EQ(eng.counters().bytes_touched, 2 * after_capture.bytes_touched);

  const CapturedGraph* g = eng.find_graph("basic");
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->captured());
  EXPECT_EQ(g->size(), 3u);
  EXPECT_EQ(eng.find_graph("nonexistent"), nullptr);
}

TEST(GraphReplay, DivergenceInvalidatesAndRecaptures) {
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_div_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_div_2", SiteKind::ParallelLoop);
  static const KernelSite& s3 = SIMAS_SITE("graph_div_3", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  {
    Engine::GraphScope graph(eng, "div");
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s2, r, {in(id)}, body);
  }  // captured: [s1, s2]
  {
    Engine::GraphScope graph(eng, "div");
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s3, r, {in(id)}, body);  // mismatch -> diverge
  }
  GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.captures, 1);
  EXPECT_EQ(st.replays, 1);
  EXPECT_EQ(st.divergences, 1);
  EXPECT_EQ(st.replayed_ops, 1);  // s1 matched before the divergence
  ASSERT_NE(eng.find_graph("div"), nullptr);
  EXPECT_FALSE(eng.find_graph("div")->captured());
  // Divergence never corrupts the work accounting: 4 loops, 4 launches.
  EXPECT_EQ(eng.counters().loops_executed, 4);
  EXPECT_EQ(eng.counters().kernel_launches, 4);

  {
    Engine::GraphScope graph(eng, "div");  // re-capture the new sequence
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s3, r, {in(id)}, body);
  }
  {
    Engine::GraphScope graph(eng, "div");  // now replays cleanly
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s3, r, {in(id)}, body);
  }
  st = eng.graph_stats();
  EXPECT_EQ(st.captures, 2);
  EXPECT_EQ(st.replays, 2);
  EXPECT_EQ(st.divergences, 1);
}

TEST(GraphReplay, TruncatedReplayCountsAsDivergence) {
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_trunc_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_trunc_2", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  {
    Engine::GraphScope graph(eng, "trunc");
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s2, r, {in(id)}, body);
  }
  {
    Engine::GraphScope graph(eng, "trunc");
    eng.for_each(s1, r, {out(id)}, body);  // pass ends early
  }
  const GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.divergences, 1);
  EXPECT_FALSE(eng.find_graph("trunc")->captured());
}

TEST(GraphReplay, CellCountChangeDiverges) {
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_cells", SiteKind::ParallelLoop);
  const auto body = [](idx, idx, idx) {};
  {
    Engine::GraphScope graph(eng, "cells");
    eng.for_each(s1, Range3{0, 8, 0, 8, 0, 8}, {out(id)}, body);
  }
  {
    Engine::GraphScope graph(eng, "cells");
    eng.for_each(s1, Range3{0, 4, 0, 8, 0, 8}, {out(id)}, body);
  }
  EXPECT_EQ(eng.graph_stats().divergences, 1);
}

TEST(GraphReplay, DisabledToggleIsBitIdenticalToNoScopes) {
  static const KernelSite& s1 = SIMAS_SITE("graph_toggle_1", SiteKind::ParallelLoop);
  static const KernelSite& sr =
      SIMAS_SITE("graph_toggle_red", SiteKind::ScalarReduction, 0, false,
                 false, /*async_capable=*/false);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  EngineConfig cfg = graph_config();
  cfg.graph_replay = false;
  Engine scoped(cfg);
  Engine plain(cfg);
  const auto ids = scoped.memory().register_array("a", 1 << 20);
  const auto idp = plain.memory().register_array("a", 1 << 20);
  for (int pass = 0; pass < 3; ++pass) {
    {
      Engine::GraphScope graph(scoped, "toggle");
      scoped.for_each(s1, r, {out(ids)}, body);
      scoped.reduce_sum(sr, r, {in(ids)}, [](idx, idx, idx) { return 1.0; });
    }
    plain.for_each(s1, r, {out(idp)}, body);
    plain.reduce_sum(sr, r, {in(idp)}, [](idx, idx, idx) { return 1.0; });
  }
  EXPECT_EQ(scoped.modeled_seconds(), plain.modeled_seconds());
  const GraphStats st = scoped.graph_stats();
  EXPECT_EQ(st.captures, 0);
  EXPECT_EQ(st.replays, 0);
  EXPECT_DOUBLE_EQ(st.kernel_launch_seconds_saved, 0.0);
  EXPECT_EQ(scoped.find_graph("toggle"), nullptr);
}

TEST(GraphReplay, InactiveOnCpuEngines) {
  EngineConfig cfg = graph_config();
  cfg.gpu = false;
  cfg.memory = gpusim::MemoryMode::HostOnly;
  cfg.device = gpusim::epyc7742_node();
  Engine eng(cfg);
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_cpu", SiteKind::ParallelLoop);
  for (int pass = 0; pass < 2; ++pass) {
    Engine::GraphScope graph(eng, "cpu");
    eng.for_each(s1, Range3{0, 4, 0, 4, 0, 4}, {out(id)},
                 [](idx, idx, idx) {});
  }
  const GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.captures, 0);
  EXPECT_EQ(st.replays, 0);
}

TEST(GraphReplay, NestedScopesAreGovernedByTheOuterGraph) {
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_nest_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_nest_2", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  auto pass = [&] {
    Engine::GraphScope outer(eng, "outer");
    eng.for_each(s1, r, {out(id)}, body);
    {
      Engine::GraphScope inner(eng, "inner");  // absorbed into "outer"
      eng.for_each(s2, r, {in(id)}, body);
    }
  };
  pass();
  pass();
  EXPECT_EQ(eng.find_graph("inner"), nullptr);
  const CapturedGraph* outer = eng.find_graph("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->size(), 2u);
  const GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.captures, 1);
  EXPECT_EQ(st.replays, 1);
  EXPECT_EQ(st.replayed_ops, 2);
}

TEST(GraphReplay, UnifiedMemoryKeepsInterKernelGapUnderReplay) {
  // Graphs eliminate launch submissions, not UM paging: replayed kernels
  // still pay um_kernel_gap_s between kernels (paper Fig. 4's UM gaps).
  Engine eng(graph_config(LoopModel::Dc2x, gpusim::MemoryMode::Unified));
  const auto id = eng.memory().register_array("a", 1 << 16);
  static const KernelSite& s1 = SIMAS_SITE("graph_um_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_um_2", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  auto pass = [&] {
    Engine::GraphScope graph(eng, "um");
    eng.for_each(s1, r, {out(id)}, body);
    eng.for_each(s2, r, {in(id)}, body);
  };
  const auto gap = [&] {
    return eng.ledger().total(gpusim::TimeCategory::LaunchGap);
  };
  pass();  // capture
  const double g1 = gap();
  pass();  // replay
  const double replay_gap = gap() - g1;

  const double overhead = eng.config().device.launch_overhead_s;
  const double um_gap = eng.config().device.um_kernel_gap_s;
  // One graph launch + the per-kernel UM gaps that replay cannot remove.
  EXPECT_DOUBLE_EQ(replay_gap, overhead + 2.0 * um_gap);
  EXPECT_DOUBLE_EQ(eng.graph_stats().kernel_launch_seconds_saved,
                   2.0 * overhead);
}

TEST(GraphReplay, TwoNamedGraphsCaptureIndependently) {
  // Per-instance graph names (viscosity vs conduction PCG) must not thrash
  // each other's captures on a shared engine.
  Engine eng(graph_config());
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_multi_1", SiteKind::ParallelLoop);
  static const KernelSite& s2 = SIMAS_SITE("graph_multi_2", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  const auto body = [](idx, idx, idx) {};

  for (int pass = 0; pass < 2; ++pass) {
    {
      Engine::GraphScope graph(eng, "visc/iter");
      eng.for_each(s1, r, {out(id)}, body);
    }
    {
      Engine::GraphScope graph(eng, "cond/iter");
      eng.for_each(s2, r, {in(id)}, body);
    }
  }
  const GraphStats st = eng.graph_stats();
  EXPECT_EQ(st.captures, 2);
  EXPECT_EQ(st.replays, 2);
  EXPECT_EQ(st.divergences, 0);
  EXPECT_TRUE(eng.find_graph("visc/iter")->captured());
  EXPECT_TRUE(eng.find_graph("cond/iter")->captured());
}

TEST(GraphReplay, ReplayedGraphLaunchAppearsInTrace) {
  Engine eng(graph_config());
  eng.tracer().enable(true);
  const auto id = eng.memory().register_array("a", 1 << 20);
  static const KernelSite& s1 = SIMAS_SITE("graph_trace_1", SiteKind::ParallelLoop);
  const Range3 r{0, 8, 0, 8, 0, 8};
  for (int pass = 0; pass < 2; ++pass) {
    Engine::GraphScope graph(eng, "traced");
    eng.for_each(s1, r, {out(id)}, [](idx, idx, idx) {});
  }
  bool found = false;
  for (const auto& e : eng.tracer().events())
    found |= (e.name == "graph:traced");
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace simas::par
