// perf_check: CI perf-regression gate.
//
//   perf_check [--rules=FILE] [--summary[=N]] BASELINE.json CURRENT.json
//
// Flattens every numeric leaf of both files, applies the first-match-wins
// tolerance rules (telemetry/perf_compare.hpp), prints the comparison, and
// exits 1 if any metric regressed beyond its tolerance (or a baseline
// metric disappeared). With no --rules, every leaf must match exactly —
// the right default for SIMAS's deterministic modeled clocks.
//
// --summary[=N] appends a digest on failure: the top-N (default 10) failed
// leaves sorted by relative delta as an aligned table, so a red CI run
// leads with the worst offender instead of a wall of rows.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/perf_compare.hpp"
#include "util/json.hpp"

namespace {

bool load_json(const std::string& path, simas::json::Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_check: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!simas::json::parse(buf.str(), out, &err)) {
    std::fprintf(stderr, "perf_check: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  bool summary = false;
  std::size_t summary_n = 10;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      rules_path = arg.substr(8);
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg.rfind("--summary=", 0) == 0) {
      summary = true;
      summary_n = static_cast<std::size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: perf_check [--rules=FILE] [--summary[=N]] BASELINE.json "
          "CURRENT.json\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "perf_check: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_check [--rules=FILE] BASELINE.json CURRENT.json\n");
    return 2;
  }

  simas::json::Value baseline, current;
  if (!load_json(positional[0], &baseline)) return 2;
  if (!load_json(positional[1], &current)) return 2;

  std::vector<simas::telemetry::ToleranceRule> rules;
  if (!rules_path.empty()) {
    simas::json::Value spec;
    if (!load_json(rules_path, &spec)) return 2;
    std::string err;
    rules = simas::telemetry::parse_rules(spec, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "perf_check: %s: %s\n", rules_path.c_str(),
                   err.c_str());
      return 2;
    }
  }

  const simas::telemetry::Comparison cmp =
      simas::telemetry::compare(baseline, current, rules);
  std::cout << "perf_check: " << positional[1] << " vs baseline "
            << positional[0] << "\n";
  cmp.print(std::cout);
  if (summary) cmp.print_summary(std::cout, summary_n);
  return cmp.ok() ? 0 : 1;
}
