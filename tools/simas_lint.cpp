// simas_lint: ahead-of-run static verification of SIMAS kernel streams.
//
// For every solver code version x halo-exchange mode x rank count, runs a
// few steps of the MAS-analog solver with stream capture on (no runtime
// shadow checks), replays each rank's recorded event trace through the
// static verifier (analysis/static_verifier.hpp), and prints one table
// row per configuration. Any Error-severity finding makes the exit status
// nonzero, so CI can gate on "no new diagnostics".
//
// Unified-memory code versions are additionally swept with um_hints on
// (span-driven prefetch/advise), and every row reports the stream's hint
// coverage: the percentage of modeled UM page traffic that was hint-driven
// (batched prefetches + advised zero-copy remote access) rather than
// demand-faulted. 0% = pure demand paging; the static verifier's hint
// rules (prefetch-span-mismatch, use-after-evict) fire on the same sweep.
//
// With --matrix the sweep gains the two portability axes: every device
// class in the catalog (gpusim::all_device_classes) x every compiler
// personality (par::all_personalities). Each cell re-verifies the stream
// that configuration actually records — implicit-UM personalities flip
// Manual DC versions to Unified, hint-ignoring personalities demote the
// hint-correctness findings to notes — so the exit status certifies the
// whole matrix, not just the nvfortran/A100 column. To keep the cell
// count bounded, matrix mode defaults to --ranks 2 --overlap 1.
//
// Usage:
//   simas_lint [--steps N] [--ranks 1,2] [--overlap 0,1] [--hints 0,1]
//              [--matrix] [--json FILE] [--verbose]
//
//   --steps N     measured steps per configuration (default 2)
//   --ranks LIST  comma-separated rank counts to sweep (default "1,2")
//   --overlap L   halo modes to sweep: 0=sync, 1=overlapped (default "0,1")
//   --hints L     um_hints modes for UM versions (default "0,1")
//   --matrix      sweep device classes x compiler personalities too
//                 (defaults become --ranks 2 --overlap 1)
//   --json FILE   also write the full report as JSON
//   --verbose     print every diagnostic, not just per-config counts

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "bench_support/run_experiment.hpp"
#include "gpusim/device_spec.hpp"
#include "par/compiler_personality.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "variants/code_version.hpp"

namespace {

using namespace simas;

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  return out;
}

struct ConfigReport {
  variants::CodeVersion version;
  gpusim::DeviceClass device = gpusim::DeviceClass::A100;
  par::CompilerPersonality personality = par::CompilerPersonality::Nvfortran;
  bool overlap = false;
  bool um_hints = false;
  int nranks = 0;
  i64 ops = 0;
  int errors = 0;
  int warnings = 0;
  i64 um_prefetches = 0;
  i64 um_advises = 0;
  double hint_coverage_pct = 0.0;  ///< hint-driven share of UM traffic
  std::vector<analysis::Diagnostic> diagnostics;
};

/// Share of modeled UM page traffic that moved via hints (batched
/// prefetches + advised zero-copy remote access) instead of demand faults.
double hint_coverage(const telemetry::MetricsSnapshot& m) {
  const double prefetched = static_cast<double>(m.counter("um.prefetch_bytes"));
  const double remote =
      static_cast<double>(m.counter("um.remote_access_bytes"));
  const double demand = static_cast<double>(m.counter("um.h2d_bytes")) +
                        static_cast<double>(m.counter("um.d2h_bytes")) -
                        prefetched;
  const double hinted = prefetched + remote;
  const double total = hinted + std::max(0.0, demand);
  return total > 0.0 ? 100.0 * hinted / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt(argc, argv);
  const bool matrix = opt.get_bool("matrix", false);
  const int steps = static_cast<int>(opt.get_int("steps", 2));
  const std::vector<int> ranks =
      parse_int_list(opt.get("ranks", matrix ? "2" : "1,2"));
  const std::vector<int> overlaps =
      parse_int_list(opt.get("overlap", matrix ? "1" : "0,1"));
  const std::vector<int> hint_modes = parse_int_list(opt.get("hints", "0,1"));
  const bool verbose = opt.get_bool("verbose", false);
  const std::string json_path = opt.get("json");

  const std::vector<gpusim::DeviceClass> devices =
      matrix ? gpusim::all_device_classes()
             : std::vector<gpusim::DeviceClass>{gpusim::DeviceClass::A100};
  const std::vector<par::CompilerPersonality> personalities =
      matrix ? par::all_personalities()
             : std::vector<par::CompilerPersonality>{
                   par::CompilerPersonality::Nvfortran};

  std::vector<ConfigReport> reports;
  for (const variants::CodeVersion v : variants::all_versions()) {
    for (const gpusim::DeviceClass dc : devices) {
      for (const par::CompilerPersonality p : personalities) {
        // "Unified" must be what this cell actually runs: implicit-UM
        // personalities flip Manual DC versions to managed memory.
        const bool unified =
            variants::engine_config(v, gpusim::device_spec(dc), p).memory ==
            gpusim::MemoryMode::Unified;
        for (const int overlap : overlaps) {
          for (const int hints : hint_modes) {
            if (hints != 0 && !unified) continue;  // hints are a UM knob
            for (const int nranks : ranks) {
              bench_support::ExperimentConfig cfg;
              cfg.version = v;
              cfg.nranks = nranks;
              cfg.device = gpusim::device_spec(dc);
              cfg.personality = p;
              cfg.grid = bench_support::bench_grid();
              cfg.warmup_steps = 1;
              cfg.measure_steps = steps;
              cfg.overlap_halo = overlap != 0;
              cfg.um_hints = hints != 0;
              cfg.capture_stream = true;
              const bench_support::ExperimentResult res =
                  bench_support::run_experiment(cfg);

              ConfigReport cr;
              cr.version = v;
              cr.device = dc;
              cr.personality = p;
              cr.overlap = overlap != 0;
              cr.um_hints = hints != 0;
              cr.nranks = nranks;
              for (const analysis::ValidationReport& r : res.static_reports) {
                cr.ops += r.ops_checked;
                cr.errors += r.errors();
                cr.warnings += r.warnings();
                cr.diagnostics.insert(cr.diagnostics.end(),
                                      r.diagnostics.begin(),
                                      r.diagnostics.end());
              }
              cr.um_prefetches = res.metrics.counter("um.prefetches");
              cr.um_advises = res.metrics.counter("um.advises");
              cr.hint_coverage_pct = hint_coverage(res.metrics);
              reports.push_back(std::move(cr));
            }
          }
        }
      }
    }
  }

  Table table(matrix
                  ? "simas_lint: static verification, portability matrix"
                  : "simas_lint: static kernel-stream verification");
  std::vector<std::string> header{"version"};
  if (matrix) {
    header.push_back("device");
    header.push_back("pers");
  }
  for (const char* col : {"halo", "hints", "ranks", "ops", "errors",
                          "warnings", "hint cov%", "status"})
    header.push_back(col);
  table.set_header(header);
  int total_errors = 0;
  for (const ConfigReport& cr : reports) {
    total_errors += cr.errors;
    auto row = table.row();
    row.cell(variants::version_tag(cr.version));
    if (matrix) {
      row.cell(gpusim::device_class_name(cr.device));
      row.cell(par::personality_tag(cr.personality));
    }
    row.cell(cr.overlap ? "overlap" : "sync")
        .cell(cr.um_hints ? "on" : "off")
        .cell(cr.nranks)
        .cell(static_cast<long long>(cr.ops))
        .cell(cr.errors)
        .cell(cr.warnings)
        .cell(cr.hint_coverage_pct, 1)
        .cell(cr.errors > 0 ? "FAIL"
                            : (cr.warnings > 0 ? "warn" : "clean"));
  }
  table.print(std::cout);

  for (const ConfigReport& cr : reports) {
    if (cr.diagnostics.empty()) continue;
    if (!verbose && cr.errors == 0) continue;
    std::cout << "\n" << variants::version_tag(cr.version) << " (";
    if (matrix)
      std::cout << gpusim::device_class_name(cr.device) << "/"
                << par::personality_tag(cr.personality) << ", ";
    std::cout << (cr.overlap ? "overlap" : "sync")
              << (cr.um_hints ? "+hints" : "") << ", " << cr.nranks
              << " rank" << (cr.nranks == 1 ? "" : "s") << "):\n";
    for (const analysis::Diagnostic& d : cr.diagnostics) {
      if (!verbose && d.severity != analysis::Severity::Error) continue;
      std::cout << "  " << d.to_string() << "\n";
    }
  }

  if (!json_path.empty()) {
    json::Value root;
    root.set("tool", "simas_lint");
    root.set("matrix", matrix);
    root.set("total_errors", total_errors);
    json::Value arr{json::Value::Array{}};
    for (const ConfigReport& cr : reports) {
      json::Value e;
      e.set("version", variants::version_tag(cr.version));
      e.set("device", gpusim::device_class_name(cr.device));
      e.set("personality", par::personality_tag(cr.personality));
      e.set("halo", cr.overlap ? "overlap" : "sync");
      e.set("um_hints", cr.um_hints);
      e.set("ranks", cr.nranks);
      e.set("ops", static_cast<long long>(cr.ops));
      e.set("errors", cr.errors);
      e.set("warnings", cr.warnings);
      e.set("um_prefetches", static_cast<long long>(cr.um_prefetches));
      e.set("um_advises", static_cast<long long>(cr.um_advises));
      e.set("hint_coverage_pct", cr.hint_coverage_pct);
      json::Value diags{json::Value::Array{}};
      for (const analysis::Diagnostic& d : cr.diagnostics) {
        json::Value jd;
        jd.set("check", analysis::check_name(d.check));
        jd.set("severity", analysis::severity_name(d.severity));
        jd.set("site", d.site);
        jd.set("array", d.array);
        jd.set("location", d.location);
        jd.set("count", static_cast<long long>(d.count));
        jd.set("message", d.message);
        diags.push_back(std::move(jd));
      }
      e.set("diagnostics", std::move(diags));
      arr.push_back(std::move(e));
    }
    root.set("configs", std::move(arr));
    std::ofstream f(json_path);
    json::write(f, root, 2);
    f << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  if (total_errors > 0) {
    std::cout << "\nsimas_lint: " << total_errors
              << " error(s) across the sweep\n";
    return 1;
  }
  std::cout << "\nsimas_lint: all streams verified clean\n";
  return 0;
}
